//! Online capacity estimation (§6 "Overload detection" and "Cost model").
//!
//! Each node estimates the average processing time per tuple from the work
//! completed between successive overload-detector invocations, smoothed with
//! a moving average. The input-buffer threshold `c` — the number of tuples
//! the node can process during one shedding interval — follows directly.
//! The model is operator-agnostic and adapts to heterogeneous node hardware,
//! exactly as the paper requires.

use crate::time::TimeDelta;

/// Exponentially weighted moving average over per-tuple processing cost.
#[derive(Debug, Clone)]
pub struct CostModel {
    alpha: f64,
    per_tuple_micros: Option<f64>,
}

impl CostModel {
    /// Default smoothing factor: recent intervals weigh 20 %.
    pub const DEFAULT_ALPHA: f64 = 0.2;

    /// Creates a cost model with the given smoothing factor in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        CostModel {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            per_tuple_micros: None,
        }
    }

    /// Windows shorter than this fraction of the nominal interval carry no
    /// usable cost signal and are dropped by [`CostModel::observe_windowed`]
    /// (a storm of back-to-back ticks would otherwise feed the EWMA samples
    /// taken over near-empty buffers).
    pub const MIN_WINDOW_WEIGHT: f64 = 0.05;

    /// Records one observation window: `busy` processing time spent on
    /// `tuples` tuples since the last detector invocation. Windows with no
    /// processed tuples carry no cost signal and are skipped.
    pub fn observe(&mut self, busy: TimeDelta, tuples: u64) {
        self.update(busy, tuples, 1.0);
    }

    /// Like [`CostModel::observe`], but weights the EWMA update by how much
    /// of the `nominal` detector period the observation `window` actually
    /// covered. A tick that fires early (after an overrun, say) contributes
    /// proportionally less, and windows below
    /// [`CostModel::MIN_WINDOW_WEIGHT`] of the nominal period are ignored
    /// outright — their per-tuple samples are dominated by scheduling noise.
    pub fn observe_windowed(
        &mut self,
        busy: TimeDelta,
        tuples: u64,
        window: TimeDelta,
        nominal: TimeDelta,
    ) {
        let weight = if nominal.is_zero() {
            1.0
        } else {
            (window.as_micros() as f64 / nominal.as_micros() as f64).clamp(0.0, 1.0)
        };
        if weight < Self::MIN_WINDOW_WEIGHT {
            return;
        }
        self.update(busy, tuples, weight);
    }

    fn update(&mut self, busy: TimeDelta, tuples: u64, weight: f64) {
        if tuples == 0 {
            return;
        }
        let sample = busy.as_micros() as f64 / tuples as f64;
        self.per_tuple_micros = Some(match self.per_tuple_micros {
            None => sample,
            Some(prev) => prev + self.alpha * weight * (sample - prev),
        });
    }

    /// Current estimate of the per-tuple processing time, if any observation
    /// has been made.
    pub fn per_tuple(&self) -> Option<TimeDelta> {
        self.per_tuple_micros
            .map(|m| TimeDelta::from_micros(m.max(0.0).round() as u64))
    }

    /// The input-buffer threshold `c`: how many tuples fit into one shedding
    /// `interval` at the current cost estimate. Before any observation the
    /// model returns `fallback` (a configured initial capacity).
    pub fn capacity(&self, interval: TimeDelta, fallback: usize) -> usize {
        match self.per_tuple_micros {
            None => fallback,
            Some(m) if m <= 0.0 => fallback,
            Some(m) => ((interval.as_micros() as f64 / m).floor() as usize).max(1),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(Self::DEFAULT_ALPHA)
    }
}

/// Periodically compares the input-buffer backlog against the capacity
/// threshold (§6): when the backlog exceeds `c`, the node is overloaded and
/// the tuple shedder must run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadDetector {
    /// Shedding interval; also the detector period (250 ms in §7).
    pub interval: TimeDelta,
    /// Initial capacity used before the cost model has observations.
    pub initial_capacity: usize,
}

impl OverloadDetector {
    /// Creates a detector with the paper's defaults: 250 ms interval.
    pub fn new(interval: TimeDelta, initial_capacity: usize) -> Self {
        OverloadDetector {
            interval,
            initial_capacity,
        }
    }

    /// The current capacity threshold per the cost model.
    pub fn threshold(&self, model: &CostModel) -> usize {
        model.capacity(self.interval, self.initial_capacity)
    }

    /// True when the buffered tuple count exceeds the threshold, i.e. the
    /// node cannot process its backlog within one interval.
    pub fn is_overloaded(&self, model: &CostModel, buffered_tuples: usize) -> bool {
        buffered_tuples > self.threshold(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_before_observations_uses_fallback() {
        let m = CostModel::default();
        assert_eq!(m.capacity(TimeDelta::from_millis(250), 1234), 1234);
        assert_eq!(m.per_tuple(), None);
    }

    #[test]
    fn capacity_tracks_observed_cost() {
        let mut m = CostModel::new(1.0); // no smoothing for the test
                                         // 100 tuples in 10 ms -> 100 us/tuple -> 2500 tuples per 250 ms.
        m.observe(TimeDelta::from_millis(10), 100);
        assert_eq!(m.capacity(TimeDelta::from_millis(250), 1), 2500);
        assert_eq!(m.per_tuple(), Some(TimeDelta::from_micros(100)));
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut m = CostModel::new(0.2);
        m.observe(TimeDelta::from_millis(10), 100); // 100 us
        m.observe(TimeDelta::from_millis(100), 100); // 1000 us spike
        let est = m.per_tuple().unwrap().as_micros() as f64;
        // 100 + 0.2*(1000-100) = 280 us
        assert!((est - 280.0).abs() < 1.0, "est {est}");
    }

    #[test]
    fn zero_tuple_windows_ignored() {
        let mut m = CostModel::new(0.5);
        m.observe(TimeDelta::from_millis(50), 0);
        assert_eq!(m.per_tuple(), None);
        m.observe(TimeDelta::from_millis(10), 10);
        m.observe(TimeDelta::from_millis(123), 0);
        assert_eq!(m.per_tuple(), Some(TimeDelta::from_micros(1000)));
    }

    #[test]
    fn detector_thresholds() {
        let mut m = CostModel::new(1.0);
        m.observe(TimeDelta::from_millis(10), 100); // 2500 tuples/250 ms
        let det = OverloadDetector::new(TimeDelta::from_millis(250), 10);
        assert_eq!(det.threshold(&m), 2500);
        assert!(!det.is_overloaded(&m, 2500));
        assert!(det.is_overloaded(&m, 2501));
    }

    #[test]
    fn detector_uses_fallback_without_observations() {
        let m = CostModel::default();
        let det = OverloadDetector::new(TimeDelta::from_millis(250), 100);
        assert!(det.is_overloaded(&m, 101));
        assert!(!det.is_overloaded(&m, 99));
    }

    #[test]
    fn near_zero_windows_are_dropped() {
        let nominal = TimeDelta::from_millis(250);
        let mut m = CostModel::new(1.0);
        m.observe_windowed(TimeDelta::from_millis(10), 100, nominal, nominal);
        assert_eq!(m.per_tuple(), Some(TimeDelta::from_micros(100)));
        // A 1 ms window after a tick storm: sample would be 1000 us/tuple,
        // but the window is below MIN_WINDOW_WEIGHT of the period.
        m.observe_windowed(
            TimeDelta::from_millis(1),
            1,
            TimeDelta::from_millis(1),
            nominal,
        );
        assert_eq!(m.per_tuple(), Some(TimeDelta::from_micros(100)));
    }

    #[test]
    fn partial_windows_weigh_proportionally() {
        let nominal = TimeDelta::from_millis(250);
        let mut m = CostModel::new(1.0);
        m.observe_windowed(TimeDelta::from_millis(10), 100, nominal, nominal); // 100 us
                                                                               // Half a window at 1000 us/tuple: alpha is scaled by 0.5.
        m.observe_windowed(
            TimeDelta::from_millis(100),
            100,
            TimeDelta::from_millis(125),
            nominal,
        );
        let est = m.per_tuple().unwrap().as_micros() as f64;
        // 100 + 1.0*0.5*(1000-100) = 550 us
        assert!((est - 550.0).abs() < 1.0, "est {est}");
    }

    #[test]
    fn zero_nominal_falls_back_to_full_weight() {
        let mut m = CostModel::new(1.0);
        m.observe_windowed(
            TimeDelta::from_millis(10),
            100,
            TimeDelta::ZERO,
            TimeDelta::ZERO,
        );
        assert_eq!(m.per_tuple(), Some(TimeDelta::from_micros(100)));
    }

    #[test]
    fn capacity_never_zero() {
        let mut m = CostModel::new(1.0);
        // Pathologically slow: 1 tuple per second.
        m.observe(TimeDelta::from_secs(1), 1);
        assert_eq!(m.capacity(TimeDelta::from_millis(250), 10), 1);
    }
}
