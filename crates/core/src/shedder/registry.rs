//! The open shedding-policy registry: name → shedder factory.
//!
//! [`PolicyKind`] used to be the closed enumeration of every shedding
//! policy the workspace knows. The registry inverts that: a policy is a
//! **name plus a factory** ([`Policy`]), the six paper policies are
//! registered by default, and external crates add their own with
//! [`register_shedder`] — no edit to `themis-core` required. Every
//! runtime (simulator, engine, benches, `experiments` CLI) stores a
//! [`Policy`] handle and builds its per-node [`Shedder`] through it, so
//! a policy registered once is immediately runnable everywhere.
//!
//! Registry keys are the single source of truth for policy naming:
//! [`Policy::name`], [`PolicyKind::name`], `FromStr` parsing and every
//! report/JSON field round-trip through the same strings.
//!
//! ```
//! use themis_core::shedder::{lookup_policy, register_shedder, FifoShedder};
//!
//! // Built-ins are pre-registered.
//! let p = lookup_policy("balance-sic").unwrap();
//! assert_eq!(p.name(), "balance-sic");
//! let _shedder = p.build(42);
//!
//! // External policies join the same namespace.
//! register_shedder("doctest-fifo-clone", |_seed| Box::new(FifoShedder::new())).unwrap();
//! assert!(lookup_policy("doctest-fifo-clone").is_ok());
//! ```

use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use super::balance_sic::{BalanceSicShedder, BatchOrder};
use super::policy::PolicyKind;
use super::random::RandomShedder;
use super::variants::{FifoShedder, PriorityShedder};
use super::Shedder;

/// A shedder factory: seed in, boxed [`Shedder`] out.
pub type ShedderFactory = Arc<dyn Fn(u64) -> Box<dyn Shedder> + Send + Sync>;

/// One registered (or builtin) shedding policy row: the [`PolicyKind`]
/// shim and the registry both read policy names and constructors from
/// this table, so there is exactly one place a builtin's spelling lives.
pub(super) struct BuiltinPolicy {
    /// The legacy enum variant this row backs.
    pub kind: PolicyKind,
    /// Canonical registry key.
    pub name: &'static str,
    /// Shedder constructor.
    pub build: fn(u64) -> Box<dyn Shedder>,
}

/// The six paper policies, in registry order (must stay aligned with
/// [`PolicyKind::ALL`]).
pub(super) const BUILTINS: [BuiltinPolicy; 6] = [
    BuiltinPolicy {
        kind: PolicyKind::BalanceSic,
        name: "balance-sic",
        build: |seed| Box::new(BalanceSicShedder::new(seed)),
    },
    BuiltinPolicy {
        kind: PolicyKind::Random,
        name: "random",
        build: |seed| Box::new(RandomShedder::new(seed)),
    },
    BuiltinPolicy {
        kind: PolicyKind::Fifo,
        name: "fifo",
        build: |_| Box::new(FifoShedder::new()),
    },
    BuiltinPolicy {
        kind: PolicyKind::Priority,
        name: "priority",
        build: |_| Box::new(PriorityShedder::new()),
    },
    BuiltinPolicy {
        kind: PolicyKind::BalanceSicLowestFirst,
        name: "balance-sic(lowest-first)",
        build: |seed| {
            Box::new(BalanceSicShedder::with_order(
                seed,
                BatchOrder::LowestSicFirst,
            ))
        },
    },
    BuiltinPolicy {
        kind: PolicyKind::BalanceSicFifoOrder,
        name: "balance-sic(fifo-order)",
        build: |seed| Box::new(BalanceSicShedder::with_order(seed, BatchOrder::Fifo)),
    },
];

/// A cheaply clonable policy handle: a registry key plus its factory.
/// Runtimes store this in their configs and call [`Policy::build`] once
/// per node.
#[derive(Clone)]
pub struct Policy {
    name: Arc<str>,
    factory: ShedderFactory,
}

impl Policy {
    /// Wraps a factory under `name` (the registry key it will be known
    /// by, if registered).
    pub fn new(name: impl Into<Arc<str>>, factory: ShedderFactory) -> Self {
        Policy {
            name: name.into(),
            factory,
        }
    }

    /// The canonical policy name (a registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates the shedder with a node-specific seed.
    pub fn build(&self, seed: u64) -> Box<dyn Shedder> {
        (self.factory)(seed)
    }
}

impl fmt::Debug for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Policy").field("name", &self.name).finish()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl PartialEq for Policy {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for Policy {}

impl From<PolicyKind> for Policy {
    fn from(kind: PolicyKind) -> Self {
        let row = BUILTINS
            .iter()
            .find(|b| b.kind == kind)
            .expect("every PolicyKind has a builtin row");
        Policy::new(row.name, Arc::new(row.build))
    }
}

impl Default for Policy {
    /// The paper's BALANCE-SIC shedder.
    fn default() -> Self {
        PolicyKind::BalanceSic.into()
    }
}

/// Attempted to register a second policy under an existing key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicatePolicyError {
    /// The contested registry key.
    pub name: String,
}

impl fmt::Display for DuplicatePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shedding policy `{}` is already registered", self.name)
    }
}

impl std::error::Error for DuplicatePolicyError {}

/// A name did not resolve against the registry. The message lists every
/// registered key, so a CLI typo is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicyError {
    /// The unresolvable input.
    pub input: String,
    /// Registry keys at lookup time, in registration order.
    pub registered: Vec<String>,
}

impl fmt::Display for UnknownPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown shedding policy `{}` (registered policies: {})",
            self.input,
            self.registered.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicyError {}

/// Normalises a CLI/user spelling onto registry-key form: trimmed,
/// lowercased, underscores to dashes.
fn normalise(s: &str) -> String {
    s.trim()
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c == '_' { '-' } else { c })
        .collect()
}

/// True when normalised input `norm` addresses registry key `name`:
/// exact, or the dashed spelling of a parenthesised key
/// (`balance-sic(lowest-first)` ⇔ `balance-sic-lowest-first`).
pub(super) fn name_matches(name: &str, norm: &str) -> bool {
    norm == name || (name.contains('(') && norm == name.replace('(', "-").replace(')', ""))
}

/// An ordered name → factory registry of shedding policies.
#[derive(Clone, Default, Debug)]
pub struct ShedderRegistry {
    entries: Vec<Policy>,
}

impl ShedderRegistry {
    /// An empty registry (no builtins).
    pub fn empty() -> Self {
        ShedderRegistry::default()
    }

    /// A registry pre-seeded with the six paper policies, in
    /// [`PolicyKind::ALL`] order.
    pub fn with_builtins() -> Self {
        let mut r = ShedderRegistry::empty();
        for b in &BUILTINS {
            r.register(Policy::new(b.name, Arc::new(b.build)))
                .expect("builtin names are unique");
        }
        r
    }

    /// Registers `policy` under its name. Keys are first-come-first-kept:
    /// a duplicate is rejected so a late registration cannot silently
    /// shadow a policy experiments already reference.
    pub fn register(&mut self, policy: Policy) -> Result<(), DuplicatePolicyError> {
        if self.get(policy.name()).is_some() {
            return Err(DuplicatePolicyError {
                name: policy.name().to_string(),
            });
        }
        self.entries.push(policy);
        Ok(())
    }

    /// Exact lookup by registry key.
    pub fn get(&self, name: &str) -> Option<&Policy> {
        self.entries.iter().find(|p| p.name() == name)
    }

    /// Resolves a user spelling (case-insensitive, `_` ⇔ `-`, dashed
    /// parenthesised forms) to a policy, or an error listing every
    /// registered key.
    pub fn parse(&self, input: &str) -> Result<Policy, UnknownPolicyError> {
        let norm = normalise(input);
        self.entries
            .iter()
            .find(|p| name_matches(p.name(), &norm))
            .cloned()
            .ok_or_else(|| UnknownPolicyError {
                input: input.trim().to_string(),
                registered: self.names().map(String::from).collect(),
            })
    }

    /// Registry keys in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(Policy::name)
    }

    /// All registered policies, in registration order.
    pub fn policies(&self) -> &[Policy] {
        &self.entries
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide registry, created on first use with the six builtins.
fn global() -> &'static RwLock<ShedderRegistry> {
    static GLOBAL: OnceLock<RwLock<ShedderRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(ShedderRegistry::with_builtins()))
}

/// Registers a shedding policy in the process-wide registry. The name
/// becomes a registry key: parseable by [`lookup_policy`], accepted by
/// `experiments --policy=<name>`, listed in unknown-policy errors.
pub fn register_shedder(
    name: impl Into<Arc<str>>,
    factory: impl Fn(u64) -> Box<dyn Shedder> + Send + Sync + 'static,
) -> Result<(), DuplicatePolicyError> {
    global()
        .write()
        .expect("shedder registry poisoned")
        .register(Policy::new(name, Arc::new(factory)))
}

/// Resolves `name` against the process-wide registry (builtins plus
/// everything registered via [`register_shedder`]).
pub fn lookup_policy(name: &str) -> Result<Policy, UnknownPolicyError> {
    global()
        .read()
        .expect("shedder registry poisoned")
        .parse(name)
}

/// Snapshot of every registered policy, in registration order (builtins
/// first).
pub fn registered_policies() -> Vec<Policy> {
    global()
        .read()
        .expect("shedder registry poisoned")
        .policies()
        .to_vec()
}

/// Snapshot of the registry keys, in registration order.
pub fn registered_policy_names() -> Vec<String> {
    global()
        .read()
        .expect("shedder registry poisoned")
        .names()
        .map(String::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_round_trip_through_registry_keys() {
        // The naming seam, closed: for every registered builtin the
        // registry key, the Policy name, the built shedder's self-reported
        // name, the PolicyKind name and FromStr all agree.
        let reg = ShedderRegistry::with_builtins();
        assert_eq!(reg.len(), PolicyKind::ALL.len());
        for (policy, kind) in reg.policies().iter().zip(PolicyKind::ALL) {
            let key = policy.name();
            assert_eq!(kind.name(), key, "PolicyKind::name agrees with the key");
            assert_eq!(reg.parse(key).unwrap().name(), key, "parse round-trips");
            assert_eq!(key.parse::<PolicyKind>(), Ok(kind), "FromStr round-trips");
            let mut built = policy.build(7);
            assert_eq!(built.name(), key, "Shedder::name agrees with the key");
            assert!(built.select_to_keep(10, &[]).keep.is_empty());
        }
    }

    #[test]
    fn parse_accepts_cli_spellings_and_lists_keys_on_error() {
        let reg = ShedderRegistry::with_builtins();
        assert_eq!(reg.parse("Balance_SIC").unwrap().name(), "balance-sic");
        assert_eq!(
            reg.parse("balance-sic-lowest-first").unwrap().name(),
            "balance-sic(lowest-first)"
        );
        let err = reg.parse("drop-everything").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("drop-everything"));
        for name in reg.names() {
            assert!(msg.contains(name), "error lists {name}");
        }
    }

    #[test]
    fn external_policies_register_and_resolve() {
        let mut reg = ShedderRegistry::with_builtins();
        reg.register(Policy::new(
            "keep-nothing",
            Arc::new(|_| Box::new(FifoShedder::new())),
        ))
        .unwrap();
        assert_eq!(reg.parse("Keep_Nothing").unwrap().name(), "keep-nothing");
        // Unknown-name errors now list the custom key too.
        let msg = reg.parse("nope").unwrap_err().to_string();
        assert!(msg.contains("keep-nothing"));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let mut reg = ShedderRegistry::with_builtins();
        let err = reg
            .register(Policy::new(
                "fifo",
                Arc::new(|_| Box::new(FifoShedder::new())),
            ))
            .unwrap_err();
        assert_eq!(err.name, "fifo");
        assert_eq!(reg.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn global_registry_serves_builtins() {
        let p = lookup_policy("priority").unwrap();
        assert_eq!(p.name(), "priority");
        assert!(registered_policy_names().contains(&"balance-sic".to_string()));
        assert!(registered_policies().len() >= PolicyKind::ALL.len());
    }

    #[test]
    fn policy_equality_and_conversion() {
        let a: Policy = PolicyKind::BalanceSic.into();
        let b = lookup_policy("balance-sic").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "balance-sic");
        assert_eq!(Policy::default().name(), "balance-sic");
        assert_ne!(a, PolicyKind::Fifo.into());
    }
}
