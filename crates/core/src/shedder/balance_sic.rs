//! The BALANCE-SIC fair shedder — Algorithm 1 of the paper.
//!
//! Per invocation (one shedding interval), `selectTuplesToKeep` iteratively:
//!
//! 1. picks the query `q'` with the minimum current SIC value among queries
//!    that still have admissible batches (line 12; ties broken randomly);
//! 2. finds the runner-up SIC value `q''` — the smallest *strictly larger*
//!    SIC among all queries (line 14);
//! 3. admits batches from `q'` — highest SIC first, line 16's `max(xSIC)` —
//!    until `q'` reaches `q''`'s value, always admitting at least one batch
//!    so the loop makes progress (this matches the worked example of Fig. 3,
//!    where ties still admit one tuple batch);
//! 4. updates `q'`'s SIC (line 20, `updateSIC`) and repeats until the
//!    capacity `c` (in tuples) is spent or no batch fits.
//!
//! The admitted set maximises node utilisation with the most valuable tuples;
//! everything else is shed by the caller.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use super::{QueryBufferState, ShedDecision, Shedder};

/// Order in which batches of the selected query are admitted. The paper
/// mandates highest-SIC-first (line 16); the other orders are ablations
/// showing why that choice matters (see `bench ablation_batch_order`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchOrder {
    /// Keep the most valuable batches first (the paper's `max(xSIC)`).
    #[default]
    HighestSicFirst,
    /// Keep the least valuable batches first (anti-optimal ablation).
    LowestSicFirst,
    /// Keep batches in arrival order (order-oblivious ablation).
    Fifo,
}

/// Algorithm 1: BALANCE-SIC stream-processing fairness.
#[derive(Debug)]
pub struct BalanceSicShedder {
    rng: SmallRng,
    order: BatchOrder,
}

/// Relative tolerance when comparing SIC levels; SIC values are tiny
/// fractions, so comparisons are made with a relative epsilon.
const REL_EPS: f64 = 1e-9;

impl BalanceSicShedder {
    /// Creates the shedder with a deterministic tie-breaking seed.
    pub fn new(seed: u64) -> Self {
        BalanceSicShedder {
            rng: SmallRng::seed_from_u64(seed),
            order: BatchOrder::HighestSicFirst,
        }
    }

    /// Creates the shedder with an explicit batch-admission order (ablation).
    pub fn with_order(seed: u64, order: BatchOrder) -> Self {
        BalanceSicShedder {
            rng: SmallRng::seed_from_u64(seed),
            order,
        }
    }
}

/// Per-query working state during one `selectTuplesToKeep` run.
struct WorkState {
    /// Current (projected) SIC value; starts at `base_sic` and grows as
    /// batches are admitted — the in-loop `updateSIC` of line 20.
    cur: f64,
    /// Remaining candidate batches, pre-sorted by the admission order.
    /// Entries are `(buffer_index, sic, tuples)`.
    remaining: Vec<(usize, f64, usize)>,
    /// Cursor into `remaining`.
    next: usize,
}

impl WorkState {
    /// Advances the cursor to the first batch fitting into `capacity`.
    ///
    /// Node capacity only shrinks during a run, so batches skipped for
    /// being too large can be discarded permanently — this keeps the whole
    /// run linear in the number of candidate batches.
    fn advance_to_fitting(&mut self, capacity: usize) -> Option<(usize, f64, usize)> {
        while let Some(&entry) = self.remaining.get(self.next) {
            if entry.2 <= capacity {
                return Some(entry);
            }
            self.next += 1;
        }
        None
    }
}

/// Min-heap entry: queries ordered by current SIC, with a random jitter so
/// ties break randomly (line 12: "selects one randomly").
struct HeapEntry {
    cur: f64,
    jitter: u32,
    q: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the minimum SIC.
        other
            .cur
            .total_cmp(&self.cur)
            .then(other.jitter.cmp(&self.jitter))
            .then(other.q.cmp(&self.q))
    }
}

impl Shedder for BalanceSicShedder {
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision {
        let mut states: Vec<WorkState> = queries
            .iter()
            .map(|q| {
                let mut remaining: Vec<(usize, f64, usize)> = q
                    .batches
                    .iter()
                    .map(|b| (b.buffer_index, b.sic.value(), b.tuples))
                    .collect();
                match self.order {
                    BatchOrder::HighestSicFirst => {
                        // Shuffle first so that equal-SIC batches are kept
                        // in random order: the stable sort preserves the
                        // shuffle among ties. Without this, a multi-input
                        // query whose sources emit equal-SIC batches would
                        // deterministically keep only one input stream and
                        // never produce a joined/covariance result.
                        remaining.shuffle(&mut self.rng);
                        remaining.sort_by(|a, b| b.1.total_cmp(&a.1));
                    }
                    BatchOrder::LowestSicFirst => {
                        remaining.shuffle(&mut self.rng);
                        remaining.sort_by(|a, b| a.1.total_cmp(&b.1));
                    }
                    BatchOrder::Fifo => {
                        // Arrival order == buffer order.
                        remaining.sort_by_key(|e| e.0);
                    }
                }
                WorkState {
                    cur: q.base_sic.value(),
                    remaining,
                    next: 0,
                }
            })
            .collect();

        let mut capacity = capacity_tuples;
        let mut keep: Vec<usize> = Vec::new();

        // Min-heap over queries' current SIC values: line 12's argmin in
        // O(log Q) per admitted batch instead of an O(Q) scan. Entries are
        // lazily refreshed: a popped entry whose `cur` is stale is dropped
        // (its owner was re-pushed with the updated value).
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<HeapEntry> = (0..states.len())
            .filter(|&q| !states[q].remaining.is_empty())
            .map(|q| HeapEntry {
                cur: states[q].cur,
                jitter: self.rng.gen(),
                q,
            })
            .collect();

        while capacity > 0 {
            // Line 12: q' = argmin qSIC; random jitter breaks ties.
            let Some(entry) = heap.pop() else {
                break;
            };
            let qp = entry.q;
            if entry.cur != states[qp].cur {
                continue; // stale: re-pushed with a newer value below
            }
            if states[qp].advance_to_fitting(capacity).is_none() {
                continue; // nothing fits any more; drop the query
            }
            // Line 14: q'' = the next-lowest SIC level — the heap top.
            // (Queries without admissible batches no longer participate;
            // they only staged intermediate climbs and do not change the
            // final allocation.)
            let target = heap
                .peek()
                .map(|e| states[e.q].cur.max(e.cur))
                .unwrap_or(states[qp].cur);

            // Lines 15-17: admit batches from q' until it reaches the
            // target, at least one batch per iteration for progress.
            let mut admitted_any = false;
            while let Some((buf_idx, sic, tuples)) = states[qp].advance_to_fitting(capacity) {
                let reaches_past =
                    states[qp].cur + sic > target * (1.0 + REL_EPS) + f64::MIN_POSITIVE;
                if admitted_any && reaches_past {
                    break;
                }
                states[qp].next += 1;
                states[qp].cur += sic;
                capacity -= tuples;
                keep.push(buf_idx);
                admitted_any = true;
                if reaches_past || states[qp].cur >= target - f64::MIN_POSITIVE {
                    break;
                }
            }
            if states[qp].next < states[qp].remaining.len() {
                heap.push(HeapEntry {
                    cur: states[qp].cur,
                    jitter: self.rng.gen(),
                    q: qp,
                });
            }
        }

        ShedDecision::from_keep(keep, queries)
    }

    fn name(&self) -> &'static str {
        match self.order {
            BatchOrder::HighestSicFirst => "balance-sic",
            BatchOrder::LowestSicFirst => "balance-sic(lowest-first)",
            BatchOrder::Fifo => "balance-sic(fifo-order)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{kept_sic_by_query, uniform_query};
    use super::*;
    use crate::fairness::jain_index;
    use crate::ids::QueryId;
    use crate::shedder::{CandidateBatch, QueryBufferState};
    use crate::sic::Sic;
    use crate::time::Timestamp;

    /// Reproduces the Figure-3 example: one node, capacity 10 tuples, four
    /// queries with source rates 20, 30, 10, (10+20) t/s. Batches are single
    /// tuples so the algorithm can hit the paper's exact outcome.
    #[test]
    fn figure3_single_node_example() {
        // tSIC values from the figure: 1/20, 1/30, 1/10, {1/20, 1/40}.
        let per_tuple = [1.0 / 20.0, 1.0 / 30.0, 1.0 / 10.0];
        let mut queries: Vec<QueryBufferState> = Vec::new();
        let mut idx = 0;
        for (q, &sic) in per_tuple.iter().enumerate() {
            let n = [20usize, 30, 10][q];
            queries.push(uniform_query(q as u32, 0.0, n, 1, sic, idx));
            idx += n;
        }
        // q4: two sources, 10 t/s (sic 1/20) and 20 t/s (sic 1/40);
        // normalised by |S|=2.
        let mut batches = Vec::new();
        for i in 0..10 {
            batches.push(CandidateBatch {
                buffer_index: idx + i,
                sic: Sic(1.0 / 20.0),
                tuples: 1,
                created: Timestamp(0),
            });
        }
        for i in 0..20 {
            batches.push(CandidateBatch {
                buffer_index: idx + 10 + i,
                sic: Sic(1.0 / 40.0),
                tuples: 1,
                created: Timestamp(0),
            });
        }
        queries.push(QueryBufferState {
            query: QueryId(3),
            base_sic: Sic::ZERO,
            batches,
        });

        let mut shedder = BalanceSicShedder::new(42);
        let decision = shedder.select_to_keep(10, &queries);
        assert_eq!(decision.kept_tuples, 10, "node capacity fully used");

        let sics = kept_sic_by_query(&decision, &queries);
        // All queries converge to 0.1; leftover capacity is then spread one
        // batch at a time over random minimum queries (the paper's
        // iteration 5), so some queries end slightly above 0.1. The worked
        // example reaches {0.1, 0.1, 0.1, 0.133}; with `max(xSIC)` admission
        // the exact leftover split depends on the tie-break, but every query
        // reaches at least 0.1 and none exceeds 0.1 by more than one tuple.
        let mut values: Vec<f64> = (0..4).map(|q| sics[&QueryId(q)]).collect();
        values.sort_by(f64::total_cmp);
        assert!(
            (values[0] - 0.1).abs() < 1e-9,
            "every query reaches 0.1: {values:?}"
        );
        assert!(
            (values[1] - 0.1).abs() < 1e-9,
            "at least two queries at exactly 0.1: {values:?}"
        );
        // No query exceeds 0.1 by more than its single largest tuple (0.1).
        assert!(values[3] <= 0.2 + 1e-9, "leftover bounded: {values:?}");
        assert!(jain_index(&values) > 0.9, "jain {}", jain_index(&values));
    }

    #[test]
    fn raises_minimum_query_first() {
        // q0 already has SIC 0.5 (from elsewhere), q1 has 0. Capacity for
        // only part of the buffer: q1 must receive everything first.
        let q0 = uniform_query(0, 0.5, 5, 10, 0.02, 0);
        let q1 = uniform_query(1, 0.0, 5, 10, 0.02, 5);
        let mut shedder = BalanceSicShedder::new(1);
        let d = shedder.select_to_keep(30, &[q0.clone(), q1.clone()]);
        let sics = kept_sic_by_query(&d, &[q0, q1]);
        // 3 batches admitted; all must go to q1 (0.06 still < 0.5).
        assert!((sics[&QueryId(1)] - 0.06).abs() < 1e-12);
        assert!((sics[&QueryId(0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_exceeds_capacity() {
        let q0 = uniform_query(0, 0.0, 100, 7, 0.001, 0);
        let q1 = uniform_query(1, 0.0, 100, 13, 0.002, 100);
        let mut shedder = BalanceSicShedder::new(7);
        for cap in [0usize, 1, 10, 50, 123, 1000, 5000] {
            let d = shedder.select_to_keep(cap, &[q0.clone(), q1.clone()]);
            assert!(d.kept_tuples <= cap, "cap {cap}: kept {}", d.kept_tuples);
        }
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q0 = uniform_query(0, 0.0, 4, 10, 0.1, 0);
        let mut shedder = BalanceSicShedder::new(7);
        let d = shedder.select_to_keep(0, &[q0]);
        assert!(d.keep.is_empty());
        assert_eq!(d.shed_batches, 4);
        assert_eq!(d.shed_tuples, 40);
    }

    #[test]
    fn abundant_capacity_keeps_everything() {
        let q0 = uniform_query(0, 0.0, 4, 10, 0.1, 0);
        let q1 = uniform_query(1, 0.3, 2, 10, 0.2, 4);
        let mut shedder = BalanceSicShedder::new(7);
        let d = shedder.select_to_keep(1000, &[q0, q1]);
        assert_eq!(d.kept_tuples, 60);
        assert_eq!(d.shed_batches, 0);
    }

    #[test]
    fn highest_sic_batches_preferred_within_query() {
        // One query, batches with different SIC; capacity for 2 of 4.
        let q = QueryBufferState {
            query: QueryId(0),
            base_sic: Sic::ZERO,
            batches: vec![
                CandidateBatch {
                    buffer_index: 0,
                    sic: Sic(0.1),
                    tuples: 10,
                    created: Timestamp(0),
                },
                CandidateBatch {
                    buffer_index: 1,
                    sic: Sic(0.4),
                    tuples: 10,
                    created: Timestamp(1),
                },
                CandidateBatch {
                    buffer_index: 2,
                    sic: Sic(0.2),
                    tuples: 10,
                    created: Timestamp(2),
                },
                CandidateBatch {
                    buffer_index: 3,
                    sic: Sic(0.3),
                    tuples: 10,
                    created: Timestamp(3),
                },
            ],
        };
        let mut shedder = BalanceSicShedder::new(7);
        let d = shedder.select_to_keep(20, &[q]);
        let mut kept = d.keep.clone();
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 3], "keeps the two highest-SIC batches");
    }

    #[test]
    fn lowest_first_ablation_inverts_preference() {
        let q = uniform_query(0, 0.0, 1, 10, 0.5, 0);
        let mut batches = q.batches.clone();
        batches.push(CandidateBatch {
            buffer_index: 1,
            sic: Sic(0.05),
            tuples: 10,
            created: Timestamp(1),
        });
        let q = QueryBufferState {
            batches,
            ..q.clone()
        };
        let mut shedder = BalanceSicShedder::with_order(7, BatchOrder::LowestSicFirst);
        let d = shedder.select_to_keep(10, &[q]);
        assert_eq!(d.keep, vec![1], "lowest-SIC batch admitted first");
    }

    #[test]
    fn converges_with_heterogeneous_rates() {
        // 8 queries with different per-batch SIC values; generous-but-
        // insufficient capacity. After shedding, Jain's index of the kept
        // SIC should be near 1.
        let mut queries = Vec::new();
        let mut idx = 0;
        for q in 0..8u32 {
            let sic = 0.002 * (1.0 + q as f64);
            queries.push(uniform_query(q, 0.0, 60, 5, sic, idx));
            idx += 60;
        }
        let mut shedder = BalanceSicShedder::new(99);
        let d = shedder.select_to_keep(600, &queries);
        let sics = kept_sic_by_query(&d, &queries);
        let values: Vec<f64> = sics.values().copied().collect();
        assert!(
            jain_index(&values) > 0.97,
            "jain {} values {values:?}",
            jain_index(&values)
        );
        assert_eq!(d.kept_tuples, 600);
    }

    #[test]
    fn deterministic_given_seed() {
        let q0 = uniform_query(0, 0.0, 50, 3, 0.01, 0);
        let q1 = uniform_query(1, 0.0, 50, 3, 0.01, 50);
        let d1 = BalanceSicShedder::new(5).select_to_keep(60, &[q0.clone(), q1.clone()]);
        let d2 = BalanceSicShedder::new(5).select_to_keep(60, &[q0, q1]);
        assert_eq!(d1.keep, d2.keep);
    }

    #[test]
    fn empty_input() {
        let mut shedder = BalanceSicShedder::new(0);
        let d = shedder.select_to_keep(100, &[]);
        assert!(d.keep.is_empty());
        assert_eq!(d.shed_tuples, 0);
    }

    #[test]
    fn skips_oversized_batches_but_fills_with_smaller() {
        // q0's batches are too big for the capacity; q1's fit.
        let q0 = uniform_query(0, 0.0, 3, 100, 0.3, 0);
        let q1 = uniform_query(1, 0.0, 5, 10, 0.01, 3);
        let mut shedder = BalanceSicShedder::new(3);
        let d = shedder.select_to_keep(50, &[q0, q1]);
        assert_eq!(d.kept_tuples, 50, "five 10-tuple batches from q1");
        assert!(d.keep.iter().all(|&i| i >= 3));
    }
}
