//! Additional baseline shedders beyond the paper's random baseline, used by
//! the ablation benches:
//!
//! * [`FifoShedder`] — drop-from-tail, what a bounded queue does with no
//!   shedding policy at all;
//! * [`PriorityShedder`] — admission-control-like: a fixed query priority
//!   order is served to saturation. This is the node-local analogue of the
//!   throughput-maximising FIT LP of §7.5, whose optimal vertex solutions
//!   serve a few queries fully and starve the rest.

use super::{QueryBufferState, ShedDecision, Shedder};

/// Drop-from-tail: keeps the oldest batches (by creation time, then buffer
/// order) until capacity is filled. Models a bounded input queue that simply
/// rejects new arrivals under overload.
#[derive(Debug, Default)]
pub struct FifoShedder;

impl FifoShedder {
    /// Creates the shedder.
    pub fn new() -> Self {
        FifoShedder
    }
}

impl Shedder for FifoShedder {
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision {
        let mut all: Vec<(u64, usize, usize)> = queries
            .iter()
            .flat_map(|q| {
                q.batches
                    .iter()
                    .map(|b| (b.created.as_micros(), b.buffer_index, b.tuples))
            })
            .collect();
        all.sort_unstable();
        let mut capacity = capacity_tuples;
        let mut keep = Vec::new();
        for (_, idx, tuples) in all {
            if tuples <= capacity {
                capacity -= tuples;
                keep.push(idx);
            } else {
                // Strict FIFO: once the head doesn't fit, stop.
                break;
            }
        }
        ShedDecision::from_keep(keep, queries)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Admission-control baseline: queries are served in ascending `QueryId`
/// order, each to saturation, until capacity runs out. Mirrors what a
/// throughput-maximising or admission-based scheme does under overload:
/// a few queries get perfect results, the rest get nothing.
#[derive(Debug, Default)]
pub struct PriorityShedder;

impl PriorityShedder {
    /// Creates the shedder.
    pub fn new() -> Self {
        PriorityShedder
    }
}

impl Shedder for PriorityShedder {
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision {
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| queries[i].query);
        let mut capacity = capacity_tuples;
        let mut keep = Vec::new();
        'outer: for i in order {
            for b in &queries[i].batches {
                if b.tuples <= capacity {
                    capacity -= b.tuples;
                    keep.push(b.buffer_index);
                }
                if capacity == 0 {
                    break 'outer;
                }
            }
        }
        ShedDecision::from_keep(keep, queries)
    }

    fn name(&self) -> &'static str {
        "priority"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::uniform_query;
    use super::*;
    use crate::ids::QueryId;
    use crate::shedder::CandidateBatch;
    use crate::sic::Sic;
    use crate::time::Timestamp;

    #[test]
    fn keeps_oldest_first() {
        let q = QueryBufferState {
            query: QueryId(0),
            base_sic: Sic::ZERO,
            batches: vec![
                CandidateBatch {
                    buffer_index: 0,
                    sic: Sic(0.1),
                    tuples: 10,
                    created: Timestamp(300),
                },
                CandidateBatch {
                    buffer_index: 1,
                    sic: Sic(0.1),
                    tuples: 10,
                    created: Timestamp(100),
                },
                CandidateBatch {
                    buffer_index: 2,
                    sic: Sic(0.1),
                    tuples: 10,
                    created: Timestamp(200),
                },
            ],
        };
        let mut s = FifoShedder::new();
        let d = s.select_to_keep(20, &[q]);
        let mut kept = d.keep.clone();
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 2], "two oldest batches kept");
    }

    #[test]
    fn stops_at_first_non_fitting_batch() {
        let q0 = uniform_query(0, 0.0, 3, 10, 0.1, 0);
        let mut s = FifoShedder::new();
        let d = s.select_to_keep(25, &[q0]);
        assert_eq!(d.kept_tuples, 20, "third batch does not fit");
    }

    #[test]
    fn respects_capacity_zero() {
        let q0 = uniform_query(0, 0.0, 3, 10, 0.1, 0);
        let mut s = FifoShedder::new();
        let d = s.select_to_keep(0, &[q0]);
        assert!(d.keep.is_empty());
    }
    #[test]
    fn priority_serves_lowest_query_ids_first() {
        let q0 = uniform_query(0, 0.0, 3, 10, 0.1, 0);
        let q1 = uniform_query(1, 0.0, 3, 10, 0.1, 3);
        let mut s = PriorityShedder::new();
        // Input order is irrelevant: service follows QueryId order.
        let d = s.select_to_keep(40, &[q1.clone(), q0.clone()]);
        // q0 (buffer indices 0..3) fully served, q1 gets the leftover 10.
        let kept0 = d.keep.iter().filter(|&&i| i < 3).count();
        let kept1 = d.keep.iter().filter(|&&i| i >= 3).count();
        assert_eq!(kept0, 3, "q0 fully served");
        assert_eq!(kept1, 1);
        assert_eq!(d.kept_tuples, 40);
    }

    #[test]
    fn priority_starves_tail_queries() {
        let queries: Vec<_> = (0..5)
            .map(|q| uniform_query(q, 0.0, 2, 10, 0.1, (q as usize) * 2))
            .collect();
        let mut s = PriorityShedder::new();
        let d = s.select_to_keep(40, &queries);
        // Capacity for exactly two queries: q0 and q1 served, q2-q4 starved.
        assert!(d.keep.iter().all(|&i| i < 4), "{:?}", d.keep);
        assert_eq!(d.kept_tuples, 40);
    }

    #[test]
    fn priority_respects_capacity() {
        let q0 = uniform_query(0, 0.0, 10, 7, 0.1, 0);
        let mut s = PriorityShedder::new();
        for cap in [0usize, 5, 7, 20, 100] {
            let d = s.select_to_keep(cap, std::slice::from_ref(&q0));
            assert!(d.kept_tuples <= cap);
        }
    }
}
