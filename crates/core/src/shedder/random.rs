//! Random shedding — the baseline THEMIS is compared against in §7.2:
//! "we compare against random shedding as a practical baseline". Batches are
//! admitted in a uniformly random order until the capacity is filled,
//! regardless of query or SIC value.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{QueryBufferState, ShedDecision, Shedder};

/// The random-shedding baseline (seeded for reproducibility).
#[derive(Debug)]
pub struct RandomShedder {
    rng: SmallRng,
}

impl RandomShedder {
    /// Creates the shedder with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomShedder {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Shedder for RandomShedder {
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision {
        let mut all: Vec<(usize, usize)> = queries
            .iter()
            .flat_map(|q| q.batches.iter().map(|b| (b.buffer_index, b.tuples)))
            .collect();
        all.shuffle(&mut self.rng);
        let mut capacity = capacity_tuples;
        let mut keep = Vec::new();
        for (idx, tuples) in all {
            if tuples <= capacity {
                capacity -= tuples;
                keep.push(idx);
            }
            if capacity == 0 {
                break;
            }
        }
        ShedDecision::from_keep(keep, queries)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::uniform_query;
    use super::*;

    #[test]
    fn respects_capacity() {
        let q0 = uniform_query(0, 0.0, 100, 7, 0.01, 0);
        let mut s = RandomShedder::new(1);
        for cap in [0usize, 13, 70, 699, 700, 10_000] {
            let d = s.select_to_keep(cap, std::slice::from_ref(&q0));
            assert!(d.kept_tuples <= cap);
        }
    }

    #[test]
    fn keeps_all_when_capacity_abounds() {
        let q0 = uniform_query(0, 0.0, 10, 5, 0.01, 0);
        let mut s = RandomShedder::new(2);
        let d = s.select_to_keep(1000, &[q0]);
        assert_eq!(d.kept_tuples, 50);
        assert_eq!(d.shed_batches, 0);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let q0 = uniform_query(0, 0.0, 50, 2, 0.01, 0);
        let d1 = RandomShedder::new(9).select_to_keep(40, std::slice::from_ref(&q0));
        let d2 = RandomShedder::new(9).select_to_keep(40, std::slice::from_ref(&q0));
        assert_eq!(d1.keep, d2.keep);
        let d3 = RandomShedder::new(10).select_to_keep(40, std::slice::from_ref(&q0));
        assert_ne!(d1.keep, d3.keep, "different seed should reshuffle");
    }

    #[test]
    fn is_query_oblivious_on_average() {
        // Two queries with equal buffered mass: over many runs the kept
        // tuples should split roughly evenly.
        let q0 = uniform_query(0, 0.0, 100, 1, 0.01, 0);
        let q1 = uniform_query(1, 0.0, 100, 1, 0.01, 100);
        let mut kept0 = 0usize;
        for seed in 0..50 {
            let mut s = RandomShedder::new(seed);
            let d = s.select_to_keep(100, &[q0.clone(), q1.clone()]);
            kept0 += d.keep.iter().filter(|&&i| i < 100).count();
        }
        let frac = kept0 as f64 / (50.0 * 100.0);
        assert!((0.4..=0.6).contains(&frac), "split {frac}");
    }
}
