//! The legacy closed policy enumeration, now a shim over the registry.
//!
//! **Deprecated surface**: [`PolicyKind`] predates the open
//! [`ShedderRegistry`](super::ShedderRegistry) and survives only as a
//! convenience for the six builtin policies. Its names and constructors
//! are read from the registry's builtin table, so the registry keys stay
//! the single source of truth; new code should hold a
//! [`Policy`](super::Policy) handle (every `PolicyKind` converts via
//! `Into<Policy>`), and policies added with
//! [`register_shedder`](super::register_shedder) are *not* representable
//! here — parse user input with [`lookup_policy`](super::lookup_policy)
//! instead of `FromStr` on this enum.

use std::fmt;
use std::str::FromStr;

use super::registry::{name_matches, BuiltinPolicy, BUILTINS};
use super::Shedder;

/// Which builtin tuple shedder a node runs (Algorithm 1 or a baseline).
///
/// Canonical names round-trip through [`PolicyKind::name`] and
/// [`FromStr`] for all six builtin policies:
///
/// ```
/// use themis_core::shedder::PolicyKind;
///
/// for policy in PolicyKind::ALL {
///     assert_eq!(policy.name().parse::<PolicyKind>(), Ok(policy));
/// }
/// // The six canonical names, in registry order:
/// let names: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
/// assert_eq!(
///     names,
///     [
///         "balance-sic",
///         "random",
///         "fifo",
///         "priority",
///         "balance-sic(lowest-first)",
///         "balance-sic(fifo-order)",
///     ]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's BALANCE-SIC fair shedder (Algorithm 1).
    BalanceSic,
    /// Random shedding (the §7.2 baseline).
    Random,
    /// Drop-from-tail (bounded queue) baseline.
    Fifo,
    /// Admission-control baseline: lowest query ids are served to
    /// saturation, the rest starve (the node-local analogue of the
    /// throughput-maximising FIT LP of §7.5).
    Priority,
    /// Ablation: Algorithm 1 but admitting *lowest*-SIC batches first
    /// (inverts line 16's `max(xSIC)`).
    BalanceSicLowestFirst,
    /// Ablation: Algorithm 1 with arrival-order admission.
    BalanceSicFifoOrder,
}

impl PolicyKind {
    /// Every builtin policy, in registry order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::BalanceSic,
        PolicyKind::Random,
        PolicyKind::Fifo,
        PolicyKind::Priority,
        PolicyKind::BalanceSicLowestFirst,
        PolicyKind::BalanceSicFifoOrder,
    ];

    /// This kind's row in the registry's builtin table.
    fn builtin(&self) -> &'static BuiltinPolicy {
        BUILTINS
            .iter()
            .find(|b| b.kind == *self)
            .expect("every PolicyKind has a builtin row")
    }

    /// Instantiates the shedder with a node-specific seed.
    pub fn build(&self, seed: u64) -> Box<dyn Shedder> {
        (self.builtin().build)(seed)
    }

    /// Canonical display name — the registry key; [`FromStr`] round-trips
    /// it.
    pub fn name(&self) -> &'static str {
        self.builtin().name
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown builtin policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown shedding policy `{}` (expected one of: ",
            self.input
        )?;
        for (i, p) in PolicyKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(p.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    /// Accepts the canonical [`PolicyKind::name`] plus a CLI-friendly
    /// spelling that replaces parentheses with dashes (e.g.
    /// `balance-sic-lowest-first`), case-insensitively. Only resolves the
    /// six builtins — registered external policies need
    /// [`lookup_policy`](super::lookup_policy).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .trim()
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c == '_' { '-' } else { c })
            .collect();
        PolicyKind::ALL
            .iter()
            .find(|p| name_matches(p.name(), &norm))
            .copied()
            .ok_or_else(|| ParsePolicyError {
                input: s.trim().to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_policy_builds_a_shedder() {
        for p in PolicyKind::ALL {
            let mut s = p.build(42);
            let d = s.select_to_keep(10, &[]);
            assert!(d.keep.is_empty());
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: HashSet<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PolicyKind::ALL.len());
        assert_eq!(PolicyKind::BalanceSic.to_string(), "balance-sic");
    }

    #[test]
    fn from_str_round_trips_every_name() {
        for p in PolicyKind::ALL {
            assert_eq!(p.name().parse::<PolicyKind>(), Ok(p), "{}", p.name());
        }
    }

    #[test]
    fn from_str_accepts_cli_spellings() {
        assert_eq!(
            "Balance-SIC".parse::<PolicyKind>(),
            Ok(PolicyKind::BalanceSic)
        );
        assert_eq!(
            "balance_sic".parse::<PolicyKind>(),
            Ok(PolicyKind::BalanceSic)
        );
        assert_eq!(
            "balance-sic-lowest-first".parse::<PolicyKind>(),
            Ok(PolicyKind::BalanceSicLowestFirst)
        );
        assert_eq!(
            "balance-sic-fifo-order".parse::<PolicyKind>(),
            Ok(PolicyKind::BalanceSicFifoOrder)
        );
        assert_eq!(" fifo ".parse::<PolicyKind>(), Ok(PolicyKind::Fifo));
    }

    #[test]
    fn from_str_rejects_unknown_with_listing() {
        let err = "drop-everything".parse::<PolicyKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("drop-everything"));
        for p in PolicyKind::ALL {
            assert!(msg.contains(p.name()), "error lists {}", p.name());
        }
    }

    #[test]
    fn from_str_rejects_truncated_spellings() {
        // A truncated `balance-sic-lowest-first` must not silently fall
        // back to plain BALANCE-SIC.
        assert!("balance-sic-".parse::<PolicyKind>().is_err());
        assert!("balance-sic-lowest".parse::<PolicyKind>().is_err());
        assert!("balance-siclowest-first".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn shim_agrees_with_builtin_shedders() {
        // The shim constructs the same shedders the registry does: the
        // built shedder's self-reported name equals the canonical name.
        for p in PolicyKind::ALL {
            assert_eq!(p.build(1).name(), p.name());
        }
    }
}
