//! Tuple shedders (§5 Algorithm 1, §6 "Tuple shedder").
//!
//! A shedder is invoked once per shedding interval with a snapshot of the
//! node's input buffer grouped by query, plus each query's *projected* result
//! SIC (the coordinator-reported value minus the SIC mass of all locally
//! buffered batches — the paper's "assume all batches are discarded"
//! heuristic that compensates for dissemination delays). It returns the set
//! of batches to keep; everything else is shed.
//!
//! Implementations:
//! * [`BalanceSicShedder`] — the paper's Algorithm 1 (BALANCE-SIC fairness);
//! * [`RandomShedder`] — the random-shedding baseline of §7.2;
//! * [`FifoShedder`] — drop-from-tail baseline (keep oldest batches);
//! * batch-order ablations of line 16's `max(xSIC)` rule via
//!   [`BatchOrder`].
//!
//! Every policy lives in the open [`ShedderRegistry`] — a name → factory
//! table through which the simulator, the prototype engine, the benches
//! and the `experiments` CLI all build their shedders. The six paper
//! policies are registered by default; external crates add their own
//! with [`register_shedder`] and every runtime picks them up by name
//! ([`lookup_policy`]). The closed [`PolicyKind`] enum remains as a
//! deprecated shim over the registry's builtin table.

mod balance_sic;
mod policy;
mod random;
mod registry;
mod variants;

pub use balance_sic::{BalanceSicShedder, BatchOrder};
pub use policy::{ParsePolicyError, PolicyKind};
pub use random::RandomShedder;
pub use registry::{
    lookup_policy, register_shedder, registered_policies, registered_policy_names,
    DuplicatePolicyError, Policy, ShedderFactory, ShedderRegistry, UnknownPolicyError,
};
pub use variants::{FifoShedder, PriorityShedder};

use crate::batch::DropBitmap;
use crate::ids::QueryId;
use crate::sic::Sic;
use crate::time::Timestamp;
use crate::tuple::Batch;

/// One shed-candidate batch inside the input buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateBatch {
    /// Index of the batch in the node's input buffer.
    pub buffer_index: usize,
    /// Aggregate SIC value of the batch (header field).
    pub sic: Sic,
    /// Number of tuples in the batch; capacity is counted in tuples.
    pub tuples: usize,
    /// Batch creation time (header field), for FIFO baselines.
    pub created: Timestamp,
}

/// Snapshot of one query's buffered batches at shedding time.
#[derive(Debug, Clone)]
pub struct QueryBufferState {
    /// The query.
    pub query: QueryId,
    /// Projected result SIC assuming every buffered batch is dropped (§6).
    pub base_sic: Sic,
    /// Buffered batches of this query.
    pub batches: Vec<CandidateBatch>,
}

impl QueryBufferState {
    /// Total buffered tuples of this query.
    pub fn buffered_tuples(&self) -> usize {
        self.batches.iter().map(|b| b.tuples).sum()
    }

    /// Total buffered SIC mass of this query.
    pub fn buffered_sic(&self) -> Sic {
        self.batches.iter().map(|b| b.sic).sum()
    }
}

/// Outcome of one shedder invocation.
#[derive(Debug, Clone, Default)]
pub struct ShedDecision {
    /// Input-buffer indices of the batches to keep, in admission order.
    pub keep: Vec<usize>,
    /// Tuples admitted.
    pub kept_tuples: usize,
    /// Tuples shed.
    pub shed_tuples: usize,
    /// Batches shed.
    pub shed_batches: usize,
}

impl ShedDecision {
    /// Builds the decision record from the keep set and the full snapshot.
    fn from_keep(keep: Vec<usize>, queries: &[QueryBufferState]) -> Self {
        use std::collections::HashSet;
        let kept: HashSet<usize> = keep.iter().copied().collect();
        let mut kept_tuples = 0;
        let mut shed_tuples = 0;
        let mut shed_batches = 0;
        for q in queries {
            for b in &q.batches {
                if kept.contains(&b.buffer_index) {
                    kept_tuples += b.tuples;
                } else {
                    shed_tuples += b.tuples;
                    shed_batches += 1;
                }
            }
        }
        ShedDecision {
            keep,
            kept_tuples,
            shed_tuples,
            shed_batches,
        }
    }

    /// Renders the decision as a [`DropBitmap`] over the `n_batches`
    /// input-buffer slots: shed batches have their bit set. Node hot loops
    /// test bits instead of scanning a sorted keep list, and whole-batch
    /// sheds become bitmap marks rather than `Vec<Tuple>` splices. The
    /// bitmap is pre-sized to `n_batches` so marking bits never grows the
    /// word vector one resize at a time.
    pub fn shed_bitmap(&self, n_batches: usize) -> DropBitmap {
        let mut keep = self.keep.clone();
        keep.sort_unstable();
        let mut bm = DropBitmap::with_rows(n_batches);
        let mut it = keep.into_iter().peekable();
        for i in 0..n_batches {
            if it.peek() == Some(&i) {
                it.next();
            } else {
                bm.drop_row(i);
            }
        }
        bm
    }
}

/// A load-shedding policy: selects which buffered batches to keep, given the
/// node's capacity in tuples for the coming interval.
pub trait Shedder: Send {
    /// Implements `selectTuplesToKeep(c, Q)` of Algorithm 1 (or a baseline).
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Builds the per-query buffer snapshot for a shedder invocation.
///
/// `reported_sic` is the latest coordinator-disseminated result SIC per query
/// (`updateSIC`, Algorithm 1 line 20). The projection heuristic of §6
/// subtracts the SIC mass of all buffered batches, clamped at zero.
pub fn build_buffer_states(
    buffer: &[Batch],
    reported_sic: impl Fn(QueryId) -> Sic,
) -> Vec<QueryBufferState> {
    use std::collections::HashMap;
    let mut by_query: HashMap<QueryId, Vec<CandidateBatch>> = HashMap::new();
    for (idx, b) in buffer.iter().enumerate() {
        by_query.entry(b.query()).or_default().push(CandidateBatch {
            buffer_index: idx,
            sic: b.sic(),
            tuples: b.len(),
            created: b.created(),
        });
    }
    let mut states: Vec<QueryBufferState> = by_query
        .into_iter()
        .map(|(query, batches)| {
            let buffered: Sic = batches.iter().map(|b| b.sic).sum();
            let base = Sic((reported_sic(query).value() - buffered.value()).max(0.0));
            QueryBufferState {
                query,
                base_sic: base,
                batches,
            }
        })
        .collect();
    // Deterministic order regardless of hash-map iteration.
    states.sort_by_key(|s| s.query);
    states
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Builds a query state with uniform batches: `n_batches` batches of
    /// `tuples_per_batch` tuples, each worth `sic_per_batch`.
    pub fn uniform_query(
        query: u32,
        base_sic: f64,
        n_batches: usize,
        tuples_per_batch: usize,
        sic_per_batch: f64,
        first_index: usize,
    ) -> QueryBufferState {
        QueryBufferState {
            query: QueryId(query),
            base_sic: Sic(base_sic),
            batches: (0..n_batches)
                .map(|i| CandidateBatch {
                    buffer_index: first_index + i,
                    sic: Sic(sic_per_batch),
                    tuples: tuples_per_batch,
                    created: Timestamp(i as u64),
                })
                .collect(),
        }
    }

    /// Sum of kept SIC per query id, from a decision and snapshot.
    pub fn kept_sic_by_query(
        decision: &ShedDecision,
        queries: &[QueryBufferState],
    ) -> std::collections::HashMap<QueryId, f64> {
        use std::collections::{HashMap, HashSet};
        let kept: HashSet<usize> = decision.keep.iter().copied().collect();
        let mut out: HashMap<QueryId, f64> = HashMap::new();
        for q in queries {
            let s: f64 = q
                .batches
                .iter()
                .filter(|b| kept.contains(&b.buffer_index))
                .map(|b| b.sic.value())
                .sum();
            out.insert(q.query, q.base_sic.value() + s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn build_states_groups_and_projects() {
        let mk = |q: u32, sic: f64| {
            Batch::new(
                QueryId(q),
                Timestamp(0),
                vec![Tuple::measurement(Timestamp(0), Sic(sic), 1.0)],
            )
        };
        let buffer = vec![mk(0, 0.1), mk(1, 0.2), mk(0, 0.3)];
        let states =
            build_buffer_states(
                &buffer,
                |q| {
                    if q == QueryId(0) {
                        Sic(0.5)
                    } else {
                        Sic(0.1)
                    }
                },
            );
        assert_eq!(states.len(), 2);
        let q0 = &states[0];
        assert_eq!(q0.query, QueryId(0));
        assert_eq!(q0.batches.len(), 2);
        // base = 0.5 - (0.1 + 0.3) = 0.1
        assert!((q0.base_sic.value() - 0.1).abs() < 1e-12);
        // q1: 0.1 - 0.2 clamps to 0.
        assert_eq!(states[1].base_sic, Sic::ZERO);
    }

    #[test]
    fn decision_statistics() {
        let q = testutil::uniform_query(0, 0.0, 3, 10, 0.1, 0);
        let d = ShedDecision::from_keep(vec![0, 2], &[q]);
        assert_eq!(d.kept_tuples, 20);
        assert_eq!(d.shed_tuples, 10);
        assert_eq!(d.shed_batches, 1);
    }

    #[test]
    fn shed_bitmap_inverts_keep_set() {
        let d = ShedDecision {
            keep: vec![4, 0, 2],
            ..Default::default()
        };
        let bm = d.shed_bitmap(5);
        assert_eq!(bm.dropped(), 2);
        for i in [0usize, 2, 4] {
            assert!(!bm.is_dropped(i), "kept batch {i} marked shed");
        }
        for i in [1usize, 3] {
            assert!(bm.is_dropped(i), "shed batch {i} not marked");
        }
    }

    #[test]
    fn buffer_state_totals() {
        let q = testutil::uniform_query(0, 0.05, 4, 5, 0.01, 0);
        assert_eq!(q.buffered_tuples(), 20);
        assert!((q.buffered_sic().value() - 0.04).abs() < 1e-12);
    }
}
