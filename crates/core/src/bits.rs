//! Word-packed bit vectors — the one bitset implementation shared by the
//! hot path.
//!
//! Three word-packed bitsets grew independently on the batch hot path:
//! the drop bitmap marking shed rows
//! ([`DropBitmap`](crate::batch::DropBitmap)), the boolean payload column
//! ([`BoolColumn`](crate::schema::BoolColumn)), and the filter kernel's
//! predicate-mask packing loop. All three now delegate their word storage
//! to [`BitVec`], so the word math (lazy growth, split-at-any-offset,
//! whole-word appends) lives — and is edge-tested — in exactly one place.
//!
//! [`BitVec`] tracks both a logical length (`len`, the number of bits
//! pushed) and the number of set bits (`count_ones`, maintained
//! incrementally so it is O(1) to read). Reads beyond the allocated words
//! return `false`, which is what every consumer wants: a drop bitmap
//! treats unallocated rows as live, a predicate mask treats them as
//! non-matching.

/// A growable, word-packed bit vector.
///
/// Two usage styles share this type:
///
/// * **Column style** ([`BitVec::push`] / [`BitVec::push_word`]): bits are
///   appended in order and `len()` is the number of bits stored — the
///   boolean payload column and the predicate-mask kernels.
/// * **Bitmap style** ([`BitVec::set`]): bits are flipped at arbitrary
///   indices with lazy word growth and no meaningful length — the drop
///   bitmap over batch rows.
///
/// ```
/// use themis_core::bits::BitVec;
///
/// let mut bits = BitVec::new();
/// bits.push(true);
/// bits.push(false);
/// assert!(bits.set(130), "newly set");
/// assert!(bits.get(0) && !bits.get(1) && bits.get(130));
/// assert_eq!(bits.count_ones(), 2);
/// assert!(!bits.get(9999), "beyond the words reads false");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// An empty bit vector whose words are pre-sized for `bits` bits, so
    /// [`BitVec::set`] below that bound never reallocates. The logical
    /// length stays 0: pre-sizing never changes semantics.
    pub fn with_bits(bits: usize) -> Self {
        BitVec {
            words: vec![0; bits.div_ceil(64)],
            len: 0,
            ones: 0,
        }
    }

    /// Grows the word storage (if needed) to cover `bits` bits in one
    /// resize instead of one word at a time per [`BitVec::set`].
    pub fn ensure_bits(&mut self, bits: usize) {
        let need = bits.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Number of bits pushed (column style; [`BitVec::set`] also extends
    /// it past the highest set index).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (maintained incrementally, O(1)).
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Bit `i` (`false` beyond the allocated words).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Sets bit `i` (bitmap style, growing the words lazily); returns
    /// `true` when the bit was newly set.
    pub fn set(&mut self, i: usize) -> bool {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let newly = self.words[word] & bit == 0;
        if newly {
            self.words[word] |= bit;
            self.ones += 1;
        }
        self.len = self.len.max(i + 1);
        newly
    }

    /// Appends one bit (column style).
    pub fn push(&mut self, v: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word >= self.words.len() {
            self.words.push(0);
        }
        if v {
            self.words[word] |= 1u64 << bit;
            self.ones += 1;
        }
        self.len += 1;
    }

    /// Appends the low `n` bits of `word` (1 ..= 64) in one or two word
    /// operations — the packing kernels build a 64-bit block in a register
    /// and append it whole instead of bit by bit.
    pub fn push_word(&mut self, word: u64, n: usize) {
        debug_assert!(n <= 64, "push_word appends at most one word");
        if n == 0 {
            return;
        }
        let word = if n >= 64 {
            word
        } else {
            word & ((1u64 << n) - 1)
        };
        let (idx, off) = (self.len / 64, self.len % 64);
        let last = if off + n > 64 { idx + 1 } else { idx };
        if last >= self.words.len() {
            self.words.resize(last + 1, 0);
        }
        self.words[idx] |= word << off;
        if off + n > 64 {
            // off > 0 here (n <= 64), so the shift below stays in range.
            self.words[idx + 1] |= word >> (64 - off);
        }
        self.ones += word.count_ones() as usize;
        self.len += n;
    }

    /// The `w`-th 64-bit word (0 beyond the allocated words).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    /// The allocated words (bits past the end read as zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Clears every bit and the logical length.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
        self.ones = 0;
    }

    /// Splits off and returns the first `n` bits, keeping the rest —
    /// word-level copies for the front and shift-merges for the tail, not
    /// a per-bit rebuild.
    pub fn split_front(&mut self, n: usize) -> BitVec {
        let n = n.min(self.len);
        let mut front_words = self.words[..n.div_ceil(64)].to_vec();
        if n % 64 != 0 {
            if let Some(last) = front_words.last_mut() {
                *last &= (1u64 << (n % 64)) - 1;
            }
        }
        let front_ones: usize = front_words.iter().map(|w| w.count_ones() as usize).sum();
        let front = BitVec {
            words: front_words,
            len: n,
            ones: front_ones,
        };
        let rest_len = self.len - n;
        let (word_off, bit_off) = (n / 64, n % 64);
        let mut rest_words = vec![0u64; rest_len.div_ceil(64)];
        for (i, w) in rest_words.iter_mut().enumerate() {
            let lo = self.words.get(word_off + i).copied().unwrap_or(0) >> bit_off;
            let hi = if bit_off == 0 {
                0
            } else {
                self.words.get(word_off + i + 1).copied().unwrap_or(0) << (64 - bit_off)
            };
            *w = lo | hi;
        }
        // Mask the tail's bits past its new length (they were front bits).
        if rest_len % 64 != 0 {
            if let Some(last) = rest_words.last_mut() {
                *last &= (1u64 << (rest_len % 64)) - 1;
            }
        }
        *self = BitVec {
            ones: rest_words.iter().map(|w| w.count_ones() as usize).sum(),
            words: rest_words,
            len: rest_len,
        };
        front
    }
}

/// Semantic equality: trailing zero words do not distinguish bit vectors
/// (a pre-sized empty vector equals a lazy one), but the logical length
/// does when either side pushed bits column-style.
impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len || self.ones != other.ones {
            return false;
        }
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| self.word(i) == other.word(i))
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bits = BitVec::new();
        for b in iter {
            bits.push(b);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_grows_lazily_and_counts() {
        let mut b = BitVec::new();
        assert!(!b.get(1000));
        assert!(b.set(130));
        assert!(!b.set(130), "double set is idempotent");
        assert!(b.get(130));
        assert!(!b.get(129));
        assert_eq!(b.count_ones(), 1);
        assert_eq!(b.len(), 131);
        b.clear();
        assert!(!b.get(130));
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn presizing_never_changes_semantics() {
        let mut pre = BitVec::with_bits(130);
        assert_eq!(pre.words().len(), 3, "130 bits need 3 words");
        assert_eq!(pre, BitVec::new(), "trailing zero words are invisible");
        pre.set(5);
        let mut lazy = BitVec::new();
        lazy.set(5);
        assert_eq!(pre, lazy);
        pre.ensure_bits(1000);
        assert_eq!(pre.words().len(), 16);
        assert_eq!(pre, lazy);
    }

    #[test]
    fn push_packs_words_in_order() {
        let mut b = BitVec::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(b.get(0) && !b.get(1) && b.get(129));
        assert!(!b.get(500), "out of range reads false");
    }

    /// Word-boundary edges: appending block-built words at every offset
    /// must agree with bit-by-bit pushes.
    #[test]
    fn push_word_at_all_offsets_matches_per_bit() {
        for lead in [0usize, 1, 7, 63, 64, 65, 127] {
            for n in [1usize, 2, 63, 64] {
                let word = 0xDEAD_BEEF_F00D_5EEDu64;
                let mut whole = BitVec::new();
                let mut per_bit = BitVec::new();
                for i in 0..lead {
                    whole.push(i % 2 == 0);
                    per_bit.push(i % 2 == 0);
                }
                whole.push_word(word, n);
                for i in 0..n {
                    per_bit.push(word & (1u64 << i) != 0);
                }
                assert_eq!(whole, per_bit, "lead {lead}, n {n}");
                assert_eq!(whole.len(), lead + n);
            }
        }
    }

    #[test]
    fn push_word_masks_high_bits() {
        let mut b = BitVec::new();
        b.push_word(!0u64, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.word(0), 0b111);
        b.push_word(0, 0);
        assert_eq!(b.len(), 3, "zero-width append is a no-op");
    }

    /// Splits at and around word boundaries preserve every bit on both
    /// sides, including the set-bit counts.
    #[test]
    fn split_front_at_any_offset() {
        for split in [0usize, 1, 63, 64, 65, 128, 200] {
            let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 5 < 2).collect();
            let mut b: BitVec = bits.iter().copied().collect();
            let front = b.split_front(split);
            assert_eq!(front.len(), split);
            assert_eq!(b.len(), 200 - split);
            assert_eq!(
                front.count_ones(),
                bits[..split].iter().filter(|&&x| x).count()
            );
            assert_eq!(b.count_ones(), bits[split..].iter().filter(|&&x| x).count());
            for (i, &bit) in bits.iter().enumerate() {
                if i < split {
                    assert_eq!(front.get(i), bit, "split {split}, front bit {i}");
                } else {
                    assert_eq!(b.get(i - split), bit, "split {split}, rest bit {i}");
                }
            }
        }
    }

    #[test]
    fn split_past_len_takes_everything() {
        let mut b: BitVec = [true, false, true].into_iter().collect();
        let front = b.split_front(99);
        assert_eq!(front.len(), 3);
        assert_eq!(b.len(), 0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn equality_is_length_aware() {
        let mut a = BitVec::new();
        a.push(false);
        assert_ne!(a, BitVec::new(), "a pushed zero bit still counts");
        let b: BitVec = [false].into_iter().collect();
        assert_eq!(a, b);
    }
}
