//! Logical time.
//!
//! THEMIS reasons about time through tuple timestamps (§3) and two windows:
//! operator windows (time or count based) and the *source time window* (STW,
//! §4). All of these are expressed in microseconds of logical time, which the
//! simulator advances deterministically and the real engine maps onto wall
//! clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in logical time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of logical time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl Timestamp {
    /// The zero timestamp (start of the run).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Builds a timestamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl TimeDelta {
    /// The zero-length delta.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Builds a delta from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000)
    }

    /// Builds a delta from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000)
    }

    /// Builds a delta from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeDelta(us)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the delta has zero length.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division of two deltas (how many `other` fit into `self`),
    /// rounding down; returns 0 when `other` is zero.
    /// (Deliberately not `std::ops::Div`: the result is a scalar count.)
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: TimeDelta) -> u64 {
        self.0.checked_div(other.0).unwrap_or(0)
    }

    /// Scales the delta by an integer factor.
    /// (Deliberately not `std::ops::Mul`: the factor is a plain count.)
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> TimeDelta {
        TimeDelta(self.0 * k)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Timestamp::from_millis(250).as_micros(), 250_000);
        assert_eq!(TimeDelta::from_secs(10).as_secs_f64(), 10.0);
        assert_eq!(TimeDelta::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1) + TimeDelta::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - Timestamp::from_secs(1)).as_millis_f64(), 500.0);
        // saturating subtraction never panics
        assert_eq!((Timestamp::ZERO - Timestamp::from_secs(5)), TimeDelta::ZERO);
    }

    #[test]
    fn delta_division() {
        let stw = TimeDelta::from_secs(10);
        let slide = TimeDelta::from_millis(250);
        assert_eq!(stw.div(slide), 40);
        assert_eq!(stw.div(TimeDelta::ZERO), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeDelta::from_millis(250).to_string(), "250.000ms");
        assert_eq!(TimeDelta::from_secs(10).to_string(), "10.000s");
        assert_eq!(Timestamp::from_secs(3).to_string(), "3.000s");
    }
}
