//! # themis-core
//!
//! The core model of **THEMIS: Fairness in Federated Stream Processing under
//! Overload** (Kalyvianaki, Fiscato, Salonidis & Pietzuch, SIGMOD 2016):
//!
//! * the **SIC** (source information content) metric — a query-independent
//!   measure of processing quality based on how much source data contributed
//!   to a result ([`sic`], [`stw`]);
//! * **BALANCE-SIC fairness** — load shedding that equalises per-query SIC
//!   values, Algorithm 1 of the paper ([`shedder`]);
//! * the supporting machinery of the THEMIS prototype: online capacity
//!   estimation ([`capacity`]), the per-query coordinator disseminating
//!   result SIC values ([`coordinator`]), and the fairness / result-quality
//!   metrics used throughout the evaluation ([`fairness`], [`metrics`]);
//! * the **columnar hot-path representation** ([`batch`]): tuple batches
//!   stored as contiguous timestamp/SIC/value columns with a drop bitmap,
//!   so shedding marks bits and window panes copy columns instead of
//!   re-allocating per tuple. Queries that declare a [`schema::Schema`]
//!   store each payload field as a contiguous *native* column
//!   (`Vec<f64>` / `Vec<i64>` / bitset) so aggregate kernels read plain
//!   slices; schema-less batches keep the dynamically-typed `Value`
//!   arena as a fallback.
//!
//! Everything in this crate is pure and deterministic: no I/O, no threads,
//! no wall-clock time. The [`themis-sim`](../themis_sim/index.html) and
//! [`themis-engine`](../themis_engine/index.html) crates host these pieces
//! inside a discrete-event simulator and a multi-threaded prototype engine
//! respectively.
//!
//! ## Quick tour
//!
//! ```
//! use themis_core::prelude::*;
//!
//! // Eq. 1: a source emitting 4 tuples per STW in a 2-source query.
//! let sic = Sic::source_tuple(4, 2);
//! assert_eq!(sic, Sic(0.125));
//!
//! // Algorithm 1 on a node with capacity for 10 tuples.
//! let mut shedder = BalanceSicShedder::new(42);
//! let decision = shedder.select_to_keep(10, &[]);
//! assert!(decision.keep.is_empty());
//!
//! // Jain's fairness index over per-query SIC values.
//! assert!((jain_index(&[0.3, 0.3, 0.3]) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod bits;
pub mod capacity;
pub mod coordinator;
pub mod fairness;
pub mod ids;
pub mod metrics;
pub mod schema;
pub mod shedder;
pub mod sic;
pub mod stw;
pub mod time;
pub mod tuple;
pub mod value;
pub mod wal;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::batch::{
        batch_allocs, BatchPool, DropBitmap, PoolStats, RowValues, TupleBatch, TupleRef,
    };
    pub use crate::bits::BitVec;
    pub use crate::capacity::{CostModel, OverloadDetector};
    pub use crate::coordinator::{QueryCoordinator, SicTable, SicUpdate};
    pub use crate::fairness::{jain_index, jain_index_sic, FairnessSummary};
    pub use crate::ids::{FragmentId, IdGen, NodeId, OperatorId, QueryId, SourceId};
    pub use crate::schema::{BoolColumn, Column, FieldType, Schema, TagColumn, TagInterner};
    pub use crate::shedder::{
        build_buffer_states, lookup_policy, register_shedder, registered_policies,
        registered_policy_names, BalanceSicShedder, BatchOrder, CandidateBatch,
        DuplicatePolicyError, FifoShedder, ParsePolicyError, Policy, PolicyKind, PriorityShedder,
        QueryBufferState, RandomShedder, ShedDecision, Shedder, ShedderFactory, ShedderRegistry,
        UnknownPolicyError,
    };
    pub use crate::sic::Sic;
    pub use crate::stw::{ResultSicTracker, SourceSicAssigner, StwConfig};
    pub use crate::time::{TimeDelta, Timestamp};
    pub use crate::tuple::{Batch, BatchHeader, Tuple};
    pub use crate::value::{Row, Value};
    pub use crate::wal::{
        NodeSnapshot, PaneKey, PaneRecord, ShardLog, ShardRestore, SicDelta, WalError, WalRecord,
    };
}
