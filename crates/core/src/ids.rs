//! Strongly-typed identifiers used across the THEMIS system.
//!
//! Every entity of the federated processing model from §3 of the paper
//! (queries, sources, operators, fragments, nodes) gets its own id newtype so
//! that ids of different kinds cannot be confused at compile time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies one user query (a DAG of operators, §3 "Query graph").
    QueryId,
    "q"
);
id_type!(
    /// Identifies one data source feeding a query (§3 "Data model").
    SourceId,
    "s"
);
id_type!(
    /// Identifies one operator inside a query graph.
    OperatorId,
    "o"
);
id_type!(
    /// Identifies one query fragment (a disjoint set of operators deployed on
    /// one node, §3 "Query deployment").
    FragmentId,
    "f"
);
id_type!(
    /// Identifies one FSPS node. The paper treats each autonomous site as a
    /// single node without loss of generality (§3).
    NodeId,
    "n"
);

/// Allocates consecutive ids of any id type; used by builders.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator whose first id is `next` — used to keep
    /// allocating fresh ids after an existing population (e.g. queries
    /// attached to a running engine after a scenario's).
    pub fn starting_at(next: u32) -> Self {
        IdGen { next }
    }

    /// Returns the next id, converted into the requested id type.
    /// (Not an `Iterator`: the target id type varies per call site.)
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: From<u32>>(&mut self) -> T {
        let id = self.next;
        self.next += 1;
        T::from(id)
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(QueryId(3).to_string(), "q3");
        assert_eq!(SourceId(0).to_string(), "s0");
        assert_eq!(OperatorId(12).to_string(), "o12");
        assert_eq!(FragmentId(7).to_string(), "f7");
        assert_eq!(NodeId(17).to_string(), "n17");
    }

    #[test]
    fn idgen_is_sequential() {
        let mut gen = IdGen::new();
        let a: QueryId = gen.next();
        let b: QueryId = gen.next();
        assert_eq!(a, QueryId(0));
        assert_eq!(b, QueryId(1));
        assert_eq!(gen.count(), 2);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
