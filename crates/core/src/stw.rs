//! Source time window (STW) accounting (§4 concept, §6 approximation).
//!
//! The STW is the interval over which source tuples are related to the result
//! tuples they contribute to. THEMIS approximates the STW with a sliding
//! window: a ring of per-slide accumulators covering the last
//! `window / slide` slides. Two users sit on top of the ring:
//!
//! * [`SourceRateEstimator`] / [`SourceSicAssigner`] count tuples per source
//!   and (re)assign source SIC values per slide, Eq. 1 — this is how the
//!   implementation relaxes Assumption 2 (a-priori known source rates);
//! * [`ResultSicTracker`] sums the SIC of result tuples arriving at the root
//!   operator, Eq. 4, producing the continuously updated `qSIC` value.

use std::collections::HashMap;

use crate::ids::{QueryId, SourceId};
use crate::sic::Sic;
use crate::time::{TimeDelta, Timestamp};
use crate::tuple::Batch;

/// STW parameters. The paper uses `window = 10 s`, `slide = 250 ms`
/// (the shedding interval) throughout the evaluation (§7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StwConfig {
    /// Length of the source time window.
    pub window: TimeDelta,
    /// Slide of the sliding-window approximation.
    pub slide: TimeDelta,
}

impl StwConfig {
    /// The evaluation default: 10 s window, 250 ms slide.
    pub const PAPER_DEFAULT: StwConfig = StwConfig {
        window: TimeDelta(10_000_000),
        slide: TimeDelta(250_000),
    };

    /// Creates a config, clamping the slide into `(0, window]`.
    pub fn new(window: TimeDelta, slide: TimeDelta) -> Self {
        let slide = if slide.is_zero() || slide > window {
            window
        } else {
            slide
        };
        StwConfig { window, slide }
    }

    /// Number of slides covering one window (at least 1).
    pub fn n_slides(&self) -> usize {
        (self.window.div(self.slide).max(1)) as usize
    }

    /// Index of the slide containing `t`.
    fn slide_index(&self, t: Timestamp) -> u64 {
        t.as_micros() / self.slide.as_micros().max(1)
    }
}

impl Default for StwConfig {
    fn default() -> Self {
        StwConfig::PAPER_DEFAULT
    }
}

/// A ring of per-slide `f64` accumulators implementing the sliding STW.
#[derive(Debug, Clone)]
pub struct SlidingAccumulator {
    cfg: StwConfig,
    slots: Vec<f64>,
    /// Absolute index of the slide currently written to.
    current: u64,
    /// Number of slides observed since the *first* `add`, capped at the
    /// ring length; used to extrapolate totals while the window is still
    /// filling up. Counting from the first observation (not from
    /// creation) matters for sources that start emitting mid-run — e.g.
    /// for a query arriving at time T, `|T_s|` must be extrapolated from
    /// the slides seen since T, or Eq. 1 would inflate its tuples' SIC.
    filled: usize,
    /// Whether any value has been added yet.
    started: bool,
}

impl SlidingAccumulator {
    /// Creates an empty accumulator.
    pub fn new(cfg: StwConfig) -> Self {
        let n = cfg.n_slides();
        SlidingAccumulator {
            cfg,
            slots: vec![0.0; n],
            current: 0,
            filled: 1,
            started: false,
        }
    }

    /// Advances the ring so that `now` falls into the current slide, zeroing
    /// any slides skipped over. Before the first `add` this is a no-op: the
    /// window only starts existing once there is data.
    pub fn advance_to(&mut self, now: Timestamp) {
        if !self.started {
            return;
        }
        let target = self.cfg.slide_index(now);
        if target <= self.current {
            return;
        }
        let n = self.slots.len() as u64;
        let steps = (target - self.current).min(n);
        for k in 1..=steps {
            let idx = ((self.current + k) % n) as usize;
            self.slots[idx] = 0.0;
        }
        self.filled = (self.filled + (target - self.current) as usize).min(self.slots.len());
        self.current = target;
    }

    /// Adds `v` into the slide containing `now` (advancing first).
    pub fn add(&mut self, now: Timestamp, v: f64) {
        if !self.started {
            self.started = true;
            self.current = self.cfg.slide_index(now);
            self.filled = 1;
        } else {
            self.advance_to(now);
        }
        let idx = (self.current % self.slots.len() as u64) as usize;
        self.slots[idx] += v;
    }

    /// Sum over the whole window.
    pub fn total(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Sum extrapolated to a full window while the ring is still filling:
    /// scales the observed total by `n_slides / filled`. Once the window has
    /// been seen fully, this equals [`SlidingAccumulator::total`].
    pub fn total_extrapolated(&self) -> f64 {
        let total = self.total();
        if self.filled >= self.slots.len() {
            total
        } else {
            total * self.slots.len() as f64 / self.filled.max(1) as f64
        }
    }

    /// The configured STW parameters.
    pub fn config(&self) -> StwConfig {
        self.cfg
    }
}

/// Counts tuples per source over the STW to estimate `|T_s|` (Eq. 1's
/// denominator) online, relaxing Assumption 2 to time-varying rates.
#[derive(Debug, Clone)]
pub struct SourceRateEstimator {
    acc: SlidingAccumulator,
}

impl SourceRateEstimator {
    /// Creates an estimator for one source.
    pub fn new(cfg: StwConfig) -> Self {
        SourceRateEstimator {
            acc: SlidingAccumulator::new(cfg),
        }
    }

    /// Records `n` tuples emitted at time `now`.
    pub fn observe(&mut self, now: Timestamp, n: u64) {
        self.acc.add(now, n as f64);
    }

    /// Estimated number of tuples this source emits per STW. At least 1 so
    /// Eq. 1 stays finite.
    pub fn tuples_per_stw(&mut self, now: Timestamp) -> u64 {
        self.acc.advance_to(now);
        (self.acc.total_extrapolated().round() as u64).max(1)
    }
}

/// Assigns Eq.-1 SIC values to source batches of one query, per slide.
///
/// THEMIS stamps the SIC values of source tuples online, before handing them
/// to downstream operators (§6 "SIC maintenance"). The assigner observes the
/// tuple counts of every source, estimates per-STW rates and re-stamps each
/// batch uniformly.
#[derive(Debug)]
pub struct SourceSicAssigner {
    cfg: StwConfig,
    n_sources: usize,
    rates: HashMap<SourceId, SourceRateEstimator>,
}

impl SourceSicAssigner {
    /// Creates an assigner for a query with `n_sources` sources (known
    /// a-priori; the paper considers queries with fixed sources).
    pub fn new(cfg: StwConfig, n_sources: usize) -> Self {
        SourceSicAssigner {
            cfg,
            n_sources: n_sources.max(1),
            rates: HashMap::new(),
        }
    }

    /// Number of sources the query reads from.
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Observes and stamps one source batch: updates the source's rate
    /// estimate and assigns every tuple `1 / (|T_s| · |S|)`.
    ///
    /// Batches without a source id are left untouched (they are derived
    /// batches and already carry propagated SIC values).
    pub fn stamp(&mut self, now: Timestamp, batch: &mut Batch) {
        let Some(source) = batch.source() else {
            return;
        };
        let cfg = self.cfg;
        let est = self
            .rates
            .entry(source)
            .or_insert_with(|| SourceRateEstimator::new(cfg));
        est.observe(now, batch.len() as u64);
        let per_stw = est.tuples_per_stw(now);
        let sic = Sic::source_tuple(per_stw, self.n_sources);
        batch.assign_uniform_sic(sic);
    }

    /// Current per-tuple SIC estimate for `source` without stamping anything.
    pub fn current_sic(&mut self, now: Timestamp, source: SourceId) -> Sic {
        let cfg = self.cfg;
        let n_sources = self.n_sources;
        let est = self
            .rates
            .entry(source)
            .or_insert_with(|| SourceRateEstimator::new(cfg));
        Sic::source_tuple(est.tuples_per_stw(now), n_sources)
    }
}

/// Tracks the result SIC of queries per Eq. 4: the sum of result-tuple SIC
/// values over the sliding STW.
#[derive(Debug, Default)]
pub struct ResultSicTracker {
    cfg: StwConfig,
    per_query: HashMap<QueryId, SlidingAccumulator>,
}

impl ResultSicTracker {
    /// Creates a tracker.
    pub fn new(cfg: StwConfig) -> Self {
        ResultSicTracker {
            cfg,
            per_query: HashMap::new(),
        }
    }

    /// Records result tuples carrying `sic_sum` aggregate SIC for `query`.
    pub fn record(&mut self, now: Timestamp, query: QueryId, sic_sum: Sic) {
        let cfg = self.cfg;
        self.per_query
            .entry(query)
            .or_insert_with(|| SlidingAccumulator::new(cfg))
            .add(now, sic_sum.value());
    }

    /// The current `qSIC` of `query`, clamped into `[0, 1]`.
    pub fn query_sic(&mut self, now: Timestamp, query: QueryId) -> Sic {
        match self.per_query.get_mut(&query) {
            Some(acc) => {
                acc.advance_to(now);
                Sic(acc.total()).clamp_unit()
            }
            None => Sic::ZERO,
        }
    }

    /// The raw (unclamped) windowed SIC sum; useful in tests validating the
    /// STW approximation error.
    pub fn query_sic_raw(&mut self, now: Timestamp, query: QueryId) -> Sic {
        match self.per_query.get_mut(&query) {
            Some(acc) => {
                acc.advance_to(now);
                Sic(acc.total())
            }
            None => Sic::ZERO,
        }
    }

    /// Queries with recorded results.
    pub fn queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.per_query.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn cfg_1s_4slides() -> StwConfig {
        StwConfig::new(TimeDelta::from_secs(1), TimeDelta::from_millis(250))
    }

    #[test]
    fn config_defaults_and_slides() {
        let c = StwConfig::PAPER_DEFAULT;
        assert_eq!(c.n_slides(), 40);
        let c2 = StwConfig::new(TimeDelta::from_secs(1), TimeDelta::ZERO);
        assert_eq!(c2.slide, TimeDelta::from_secs(1));
        assert_eq!(c2.n_slides(), 1);
    }

    #[test]
    fn sliding_accumulator_expires_old_slides() {
        let mut acc = SlidingAccumulator::new(cfg_1s_4slides());
        acc.add(Timestamp::from_millis(0), 10.0);
        acc.add(Timestamp::from_millis(300), 5.0);
        assert_eq!(acc.total(), 15.0);
        // 1.2 s later the first two slides have fallen out of the window.
        acc.advance_to(Timestamp::from_millis(1300));
        assert_eq!(acc.total(), 0.0);
    }

    #[test]
    fn sliding_accumulator_partial_expiry() {
        let mut acc = SlidingAccumulator::new(cfg_1s_4slides());
        acc.add(Timestamp::from_millis(0), 1.0);
        acc.add(Timestamp::from_millis(250), 2.0);
        acc.add(Timestamp::from_millis(500), 4.0);
        acc.add(Timestamp::from_millis(750), 8.0);
        assert_eq!(acc.total(), 15.0);
        // Advancing one slide drops the oldest slot (value 1.0).
        acc.advance_to(Timestamp::from_millis(1000));
        assert_eq!(acc.total(), 14.0);
    }

    #[test]
    fn extrapolation_while_filling() {
        let mut acc = SlidingAccumulator::new(cfg_1s_4slides());
        acc.add(Timestamp::from_millis(0), 100.0);
        // Only 1 of 4 slides observed -> scale by 4.
        assert_eq!(acc.total_extrapolated(), 400.0);
        acc.add(Timestamp::from_millis(250), 100.0);
        assert_eq!(acc.total_extrapolated(), 400.0);
        acc.add(Timestamp::from_millis(500), 100.0);
        acc.add(Timestamp::from_millis(750), 100.0);
        assert_eq!(acc.total_extrapolated(), 400.0);
        // Window full: no more extrapolation.
        assert_eq!(acc.total(), 400.0);
    }

    #[test]
    fn rate_estimator_tracks_constant_rate() {
        let cfg = cfg_1s_4slides();
        let mut est = SourceRateEstimator::new(cfg);
        // 400 tuples/s in 80-tuple batches every 200 ms (the local test-bed
        // source profile of Table 2).
        for i in 0..20 {
            est.observe(Timestamp::from_millis(i * 200), 80);
        }
        let per_stw = est.tuples_per_stw(Timestamp::from_millis(3800));
        // 1 s window at 400 t/s => ~400 tuples.
        assert!((350..=450).contains(&per_stw), "estimate {per_stw}");
    }

    #[test]
    fn assigner_stamps_eq1_values() {
        let cfg = cfg_1s_4slides();
        let mut assigner = SourceSicAssigner::new(cfg, 2);
        let mk = |ts: u64| {
            Batch::from_source(
                QueryId(0),
                SourceId(0),
                Timestamp::from_millis(ts),
                (0..10)
                    .map(|i| Tuple::measurement(Timestamp::from_millis(ts), Sic::ZERO, i as f64))
                    .collect(),
            )
        };
        // Steady 10 tuples / 250 ms => 40 tuples per 1 s STW.
        let mut last = mk(0);
        for ts in (0..3000).step_by(250) {
            last = mk(ts);
            assigner.stamp(Timestamp::from_millis(ts), &mut last);
        }
        let expected = Sic::source_tuple(40, 2);
        let got = last.iter().next().unwrap().sic;
        assert!(
            (got.value() - expected.value()).abs() / expected.value() < 0.15,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn assigner_ignores_derived_batches() {
        let cfg = cfg_1s_4slides();
        let mut assigner = SourceSicAssigner::new(cfg, 2);
        let mut derived = Batch::new(
            QueryId(0),
            Timestamp(0),
            vec![Tuple::measurement(Timestamp(0), Sic(0.7), 1.0)],
        );
        assigner.stamp(Timestamp(0), &mut derived);
        assert_eq!(derived.sic(), Sic(0.7));
    }

    #[test]
    fn result_tracker_windows_out() {
        let cfg = cfg_1s_4slides();
        let mut tracker = ResultSicTracker::new(cfg);
        let q = QueryId(3);
        tracker.record(Timestamp::from_millis(0), q, Sic(0.4));
        tracker.record(Timestamp::from_millis(400), q, Sic(0.4));
        assert_eq!(tracker.query_sic(Timestamp::from_millis(500), q), Sic(0.8));
        // After the STW passes, the SIC decays to zero.
        assert_eq!(
            tracker.query_sic(Timestamp::from_millis(2000), q),
            Sic::ZERO
        );
    }

    #[test]
    fn result_tracker_clamps_to_unit() {
        let cfg = cfg_1s_4slides();
        let mut tracker = ResultSicTracker::new(cfg);
        let q = QueryId(0);
        tracker.record(Timestamp(0), q, Sic(0.9));
        tracker.record(Timestamp(1), q, Sic(0.9));
        assert_eq!(tracker.query_sic(Timestamp(2), q), Sic::PERFECT);
        assert!(tracker.query_sic_raw(Timestamp(2), q).value() > 1.0);
    }

    #[test]
    fn unknown_query_reads_zero() {
        let mut tracker = ResultSicTracker::new(cfg_1s_4slides());
        assert_eq!(tracker.query_sic(Timestamp(0), QueryId(9)), Sic::ZERO);
    }
}
