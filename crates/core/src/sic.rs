//! The Source Information Content (SIC) metric (§4 of the paper).
//!
//! SIC quantifies, per tuple, how much *source data* contributed to it:
//!
//! * a **source tuple** from source `s` is worth `1 / (|T_s| · |S|)` where
//!   `|T_s|` is the number of tuples `s` emits during one source time window
//!   and `|S|` is the number of sources of the query (Eq. 1);
//! * a **derived tuple** emitted by an operator that atomically consumed the
//!   input set `T_in` and produced `T_out` is worth
//!   `sum(SIC(T_in)) / |T_out|` (Eq. 3);
//! * the **query result SIC** is the sum of result-tuple SIC values over one
//!   source time window (Eq. 4) and lies in `[0, 1]` — `1` is perfect
//!   processing, `0` means every source tuple was shed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A SIC value: non-negative information mass carried by a tuple or batch.
///
/// This is a thin `f64` wrapper that keeps SIC arithmetic explicit and gives
/// it a total order (needed for the max-SIC batch selection of Algorithm 1,
/// line 16).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sic(pub f64);

impl Sic {
    /// The zero SIC value.
    pub const ZERO: Sic = Sic(0.0);
    /// The SIC value of a perfect query result over one STW.
    pub const PERFECT: Sic = Sic(1.0);

    /// Assigns the SIC value of one source tuple per Eq. 1:
    /// `1 / (tuples_from_source_in_stw · n_sources)`.
    ///
    /// Both counts are clamped to at least 1 so that a source that has not
    /// yet been rate-profiled still yields a finite value.
    pub fn source_tuple(tuples_from_source_in_stw: u64, n_sources: usize) -> Sic {
        let t = tuples_from_source_in_stw.max(1) as f64;
        let s = n_sources.max(1) as f64;
        Sic(1.0 / (t * s))
    }

    /// Splits the aggregate input SIC mass across `n_outputs` derived tuples
    /// per Eq. 3. With zero outputs the mass is lost (the paper's model:
    /// tuples "lost" in filters/joins no longer contribute).
    pub fn derived_tuple(input_sum: Sic, n_outputs: usize) -> Sic {
        if n_outputs == 0 {
            Sic::ZERO
        } else {
            Sic(input_sum.0 / n_outputs as f64)
        }
    }

    /// Raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the value is a valid SIC mass (finite and non-negative).
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Clamps a result SIC to the theoretical `[0, 1]` interval. The sliding
    /// STW approximation (§6) can transiently overshoot 1 slightly; clamping
    /// is applied only where the paper's `qSIC ∈ [0, 1]` contract matters.
    pub fn clamp_unit(self) -> Sic {
        Sic(self.0.clamp(0.0, 1.0))
    }

    /// Total order (NaN-safe) used for selecting max-SIC batches.
    pub fn total_cmp(&self, other: &Sic) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Sic {
    type Output = Sic;
    fn add(self, rhs: Sic) -> Sic {
        Sic(self.0 + rhs.0)
    }
}

impl AddAssign for Sic {
    fn add_assign(&mut self, rhs: Sic) {
        self.0 += rhs.0;
    }
}

impl Sub for Sic {
    type Output = Sic;
    fn sub(self, rhs: Sic) -> Sic {
        Sic(self.0 - rhs.0)
    }
}

impl Sum for Sic {
    fn sum<I: Iterator<Item = Sic>>(iter: I) -> Sic {
        Sic(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Sic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Sic {
    fn from(v: f64) -> Self {
        Sic(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_source_assignment() {
        // Figure 2: two sources; one emits 4 tuples/STW -> 1/(4*2) = 0.125,
        // the other 2 tuples/STW -> 1/(2*2) = 0.25.
        assert_eq!(Sic::source_tuple(4, 2), Sic(0.125));
        assert_eq!(Sic::source_tuple(2, 2), Sic(0.25));
    }

    #[test]
    fn eq1_clamps_degenerate_counts() {
        assert_eq!(Sic::source_tuple(0, 0), Sic(1.0));
        assert!(Sic::source_tuple(0, 3).is_valid());
    }

    #[test]
    fn eq3_derivation() {
        // Figure 2, operator b: 4 inputs of 0.125 -> 2 outputs of 0.25.
        let input_sum = Sic(4.0 * 0.125);
        assert_eq!(Sic::derived_tuple(input_sum, 2), Sic(0.25));
        // A filter dropping everything loses the mass.
        assert_eq!(Sic::derived_tuple(input_sum, 0), Sic::ZERO);
    }

    #[test]
    fn figure2_end_to_end_mass() {
        // Without shedding the whole query carries SIC mass 1:
        // 4 * 0.125 + 2 * 0.25 = 1.0, propagated to 2 result tuples of 0.5.
        let sources: Sic = std::iter::repeat(Sic::source_tuple(4, 2))
            .take(4)
            .chain(std::iter::repeat(Sic::source_tuple(2, 2)).take(2))
            .sum();
        assert!((sources.value() - 1.0).abs() < 1e-12);
        let result = Sic::derived_tuple(sources, 2);
        assert_eq!(result, Sic(0.5));
    }

    #[test]
    fn arithmetic_and_order() {
        let a = Sic(0.2);
        let b = Sic(0.3);
        assert_eq!(a + b, Sic(0.5));
        assert_eq!((b - a).value(), 0.3 - 0.2);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
        let mut c = a;
        c += b;
        assert_eq!(c, Sic(0.5));
    }

    #[test]
    fn clamp_unit_bounds() {
        assert_eq!(Sic(1.7).clamp_unit(), Sic(1.0));
        assert_eq!(Sic(-0.2).clamp_unit(), Sic::ZERO);
        assert_eq!(Sic(0.4).clamp_unit(), Sic(0.4));
    }

    #[test]
    fn validity() {
        assert!(Sic(0.0).is_valid());
        assert!(!Sic(f64::NAN).is_valid());
        assert!(!Sic(-1.0).is_valid());
        assert!(!Sic(f64::INFINITY).is_valid());
    }
}
