//! Property-based tests over the core THEMIS invariants.

use proptest::prelude::*;
use themis_core::prelude::*;

/// Strategy: a buffer snapshot of up to 8 queries, each with up to 20
/// batches of 1-20 tuples and small positive SIC values.
fn arb_states() -> impl Strategy<Value = Vec<QueryBufferState>> {
    prop::collection::vec(
        (
            0.0f64..0.5,
            prop::collection::vec((1usize..20, 1e-6f64..0.05), 0..20),
        ),
        1..8,
    )
    .prop_map(|queries| {
        let mut idx = 0usize;
        queries
            .into_iter()
            .enumerate()
            .map(|(q, (base, batches))| {
                let batches = batches
                    .into_iter()
                    .map(|(tuples, sic)| {
                        let b = CandidateBatch {
                            buffer_index: idx,
                            sic: Sic(sic),
                            tuples,
                            created: Timestamp(idx as u64),
                        };
                        idx += 1;
                        b
                    })
                    .collect();
                QueryBufferState {
                    query: QueryId(q as u32),
                    base_sic: Sic(base),
                    batches,
                }
            })
            .collect()
    })
}

proptest! {
    /// The shedder never admits more tuples than the capacity, for any
    /// policy.
    #[test]
    fn shedders_respect_capacity(states in arb_states(), cap in 0usize..500, seed in 0u64..1000) {
        let shedders: Vec<Box<dyn Shedder>> = vec![
            Box::new(BalanceSicShedder::new(seed)),
            Box::new(RandomShedder::new(seed)),
            Box::new(FifoShedder::new()),
        ];
        for mut s in shedders {
            let d = s.select_to_keep(cap, &states);
            prop_assert!(d.kept_tuples <= cap, "{} kept {} > cap {}", s.name(), d.kept_tuples, cap);
        }
    }

    /// Keep-set indices are unique and refer to actual buffered batches.
    #[test]
    fn keep_set_is_valid(states in arb_states(), cap in 0usize..500, seed in 0u64..1000) {
        let valid: std::collections::HashSet<usize> = states
            .iter()
            .flat_map(|q| q.batches.iter().map(|b| b.buffer_index))
            .collect();
        let mut s = BalanceSicShedder::new(seed);
        let d = s.select_to_keep(cap, &states);
        let mut seen = std::collections::HashSet::new();
        for &i in &d.keep {
            prop_assert!(valid.contains(&i), "kept unknown index {i}");
            prop_assert!(seen.insert(i), "duplicate keep index {i}");
        }
        // Conservation: kept + shed tuples equals the buffered total.
        let total: usize = states.iter().map(|q| q.buffered_tuples()).sum();
        prop_assert_eq!(d.kept_tuples + d.shed_tuples, total);
    }

    /// With unlimited capacity, nothing is shed by any policy.
    #[test]
    fn unlimited_capacity_sheds_nothing(states in arb_states(), seed in 0u64..100) {
        let total: usize = states.iter().map(|q| q.buffered_tuples()).sum();
        for mut s in [
            Box::new(BalanceSicShedder::new(seed)) as Box<dyn Shedder>,
            Box::new(RandomShedder::new(seed)),
            Box::new(FifoShedder::new()),
        ] {
            let d = s.select_to_keep(total, &states);
            prop_assert_eq!(d.kept_tuples, total, "{} shed under no overload", s.name());
        }
    }

    /// BALANCE-SIC weakly dominates random shedding in Jain's index when all
    /// batches are single tuples (so the convergence argument applies
    /// exactly).
    #[test]
    fn balance_is_fairer_than_random_on_unit_batches(
        per_query in prop::collection::vec((1usize..60, 1e-4f64..0.02), 2..6),
        seed in 0u64..50,
    ) {
        let mut idx = 0usize;
        let states: Vec<QueryBufferState> = per_query
            .iter()
            .enumerate()
            .map(|(q, &(n, sic))| {
                let batches = (0..n)
                    .map(|_| {
                        let b = CandidateBatch {
                            buffer_index: idx,
                            sic: Sic(sic),
                            tuples: 1,
                            created: Timestamp(idx as u64),
                        };
                        idx += 1;
                        b
                    })
                    .collect();
                QueryBufferState { query: QueryId(q as u32), base_sic: Sic::ZERO, batches }
            })
            .collect();
        let total: usize = states.iter().map(|q| q.buffered_tuples()).sum();
        let cap = total / 2;
        let kept_sics = |d: &ShedDecision| -> Vec<f64> {
            let kept: std::collections::HashSet<usize> = d.keep.iter().copied().collect();
            states
                .iter()
                .map(|q| {
                    q.batches
                        .iter()
                        .filter(|b| kept.contains(&b.buffer_index))
                        .map(|b| b.sic.value())
                        .sum::<f64>()
                })
                .collect()
        };
        let db = BalanceSicShedder::new(seed).select_to_keep(cap, &states);
        let dr = RandomShedder::new(seed).select_to_keep(cap, &states);
        let jb = jain_index(&kept_sics(&db));
        let jr = jain_index(&kept_sics(&dr));
        // Allow small numerical slack; random can occasionally be fair by
        // chance but should never be *meaningfully* fairer.
        prop_assert!(jb >= jr - 0.05, "balance {jb} vs random {jr}");
    }

    /// Jain's index is bounded by [1/n, 1] on non-degenerate inputs.
    #[test]
    fn jain_bounds(values in prop::collection::vec(0.0f64..1.0, 1..50)) {
        let j = jain_index(&values);
        let n = values.len() as f64;
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / n - 1e-12);
    }

    /// Eq. 3 conserves SIC mass: splitting an input sum across any positive
    /// number of outputs and re-summing returns the input sum.
    #[test]
    fn sic_propagation_conserves_mass(mass in 0.0f64..10.0, n in 1usize..100) {
        let per = Sic::derived_tuple(Sic(mass), n);
        let back: Sic = std::iter::repeat(per).take(n).sum();
        prop_assert!((back.value() - mass).abs() < 1e-9 * mass.max(1.0));
    }

    /// The sliding accumulator's total is always the sum of the last
    /// `window` worth of additions.
    #[test]
    fn sliding_accumulator_window_sum(
        adds in prop::collection::vec((0u64..5_000, 0.0f64..10.0), 1..100),
    ) {
        use themis_core::stw::{SlidingAccumulator, StwConfig};
        let cfg = StwConfig::new(TimeDelta::from_millis(1000), TimeDelta::from_millis(250));
        let mut acc = SlidingAccumulator::new(cfg);
        let mut adds = adds;
        adds.sort_by_key(|&(t, _)| t);
        for &(t, v) in &adds {
            acc.add(Timestamp::from_millis(t), v);
        }
        let now_ms = adds.last().unwrap().0;
        let now_slide = now_ms / 250;
        // Manual reference: sum of values whose slide index is within the
        // last 4 slides.
        let expect: f64 = adds
            .iter()
            .filter(|&&(t, _)| {
                let s = t / 250;
                now_slide - s < 4
            })
            .map(|&(_, v)| v)
            .sum();
        prop_assert!((acc.total() - expect).abs() < 1e-9, "{} vs {}", acc.total(), expect);
    }

    /// Shedding through the batch bitmap drops exactly the same tuple set
    /// as the row path, for every registered policy: snapshots built from
    /// columnar batches equal snapshots built from tuple rows, two
    /// same-seeded shedders reach the same decision on them, and applying
    /// that decision by marking the drop bitmap keeps the same tuples (in
    /// the same order) as splicing kept `Vec<Tuple>`s.
    #[test]
    fn bitmap_shedding_matches_row_path_for_all_policies(
        batches in prop::collection::vec(
            (0u32..4, 1usize..12, 1e-6f64..0.05),
            1..24,
        ),
        cap in 0usize..200,
        seed in 0u64..500,
    ) {
        // One workload, two representations.
        let rows: Vec<(QueryId, Vec<Tuple>)> = batches
            .iter()
            .enumerate()
            .map(|(i, &(q, n, sic))| {
                let tuples: Vec<Tuple> = (0..n)
                    .map(|k| {
                        Tuple::measurement(
                            Timestamp((i * 100 + k) as u64),
                            Sic(sic),
                            (i * 1000 + k) as f64,
                        )
                    })
                    .collect();
                (QueryId(q), tuples)
            })
            .collect();
        let columnar: Vec<Batch> = rows
            .iter()
            .map(|(q, tuples)| Batch::new(*q, tuples[0].ts, tuples.clone()))
            .collect();

        // Row-path snapshot: per-tuple iteration.
        let mut by_query: std::collections::BTreeMap<QueryId, Vec<CandidateBatch>> =
            std::collections::BTreeMap::new();
        for (idx, (q, tuples)) in rows.iter().enumerate() {
            by_query.entry(*q).or_default().push(CandidateBatch {
                buffer_index: idx,
                sic: tuples.iter().map(|t| t.sic).sum(),
                tuples: tuples.len(),
                created: tuples[0].ts,
            });
        }
        let row_states: Vec<QueryBufferState> = by_query
            .into_iter()
            .map(|(query, batches)| QueryBufferState {
                query,
                base_sic: Sic::ZERO,
                batches,
            })
            .collect();
        // Batch-path snapshot: header reads.
        let batch_states = build_buffer_states(&columnar, |_| Sic::ZERO);

        for policy in PolicyKind::ALL {
            let d_row = policy.build(seed).select_to_keep(cap, &row_states);
            let d_batch = policy.build(seed).select_to_keep(cap, &batch_states);
            prop_assert_eq!(
                &d_row.keep, &d_batch.keep,
                "{}: decisions diverged across representations", policy.name()
            );

            // Row path: splice the kept tuples out of the buffer.
            let kept: std::collections::HashSet<usize> = d_row.keep.iter().copied().collect();
            let row_kept: Vec<Tuple> = rows
                .iter()
                .enumerate()
                .filter(|(idx, _)| kept.contains(idx))
                .flat_map(|(_, (_, tuples))| tuples.clone())
                .collect();

            // Batch path: mark shed batches in the bitmap, then read what
            // is still live.
            let shed = d_batch.shed_bitmap(columnar.len());
            let mut marked = columnar.clone();
            for (idx, b) in marked.iter_mut().enumerate() {
                if shed.is_dropped(idx) {
                    // Whole-batch shed: flip the rows' bits.
                    let mut data = b.clone().into_data();
                    data.drop_all();
                    *b = Batch::from_data(b.query(), b.created(), data);
                }
            }
            let batch_kept: Vec<Tuple> = marked
                .iter()
                .flat_map(|b| b.iter().map(|r| r.to_tuple()))
                .collect();

            prop_assert_eq!(
                &row_kept, &batch_kept,
                "{}: bitmap kept a different tuple set", policy.name()
            );
        }
    }

    /// Dictionary-encoded tag columns survive the batch plumbing: the
    /// same rows pushed through an arena batch (`from_tuples`) and a
    /// typed batch (schema with a `Tag` field) stay identical through
    /// split_front → append_batch → random drops → gather, and every
    /// surviving code still resolves to the string it was interned from.
    #[test]
    fn dictionary_round_trip_preserves_tags(
        rows in prop::collection::vec((0usize..6, 0u32..2, 0u32..2), 1..48),
        split_at in 0usize..48,
    ) {
        let schema = Schema::new([("tag", FieldType::Tag), ("x", FieldType::F64)]);
        let dict = schema.interner().expect("tag schema has an interner").clone();
        let pool: Vec<String> = (0..6).map(|k| format!("tag-{k}")).collect();
        let codes: Vec<u32> = pool.iter().map(|s| dict.intern(s)).collect();

        let tuples: Vec<Tuple> = rows
            .iter()
            .enumerate()
            .map(|(i, &(k, _, _))| {
                Tuple::new(
                    Timestamp(i as u64),
                    Sic(1e-3),
                    vec![Value::Tag(codes[k]), Value::F64(i as f64)],
                )
            })
            .collect();

        let mut arena = TupleBatch::from_tuples(tuples.clone());
        let mut typed = TupleBatch::with_schema_capacity(schema.clone(), tuples.len());
        for t in &tuples {
            typed.push_tuple(t);
        }
        prop_assert!(typed.tag_column(0).is_some());

        // split_front + append_batch is an identity on the row sequence.
        let n = split_at % (tuples.len() + 1);
        let mut arena_front = arena.split_front(n);
        arena_front.append_batch(&arena);
        let mut typed_front = typed.split_front(n);
        typed_front.append_batch(&typed);
        let (mut arena, mut typed) = (arena_front, typed_front);

        // Random drop bitmap, applied identically to both layouts.
        for (i, &(_, dropped, _)) in rows.iter().enumerate() {
            if dropped == 1 {
                arena.drop_row(i);
                typed.drop_row(i);
            }
        }

        // Gather the rows whose mask bit is set; dropped rows' bits are
        // cleared up front, as the filter kernel's predicate mask does.
        let mut mask = vec![0u64; rows.len().div_ceil(64)];
        for (i, &(_, dropped, keep)) in rows.iter().enumerate() {
            if keep == 1 && dropped == 0 {
                mask[i / 64] |= 1 << (i % 64);
            }
        }
        let arena_out = arena.gather(&mask);
        let typed_out = typed.gather(&mask);

        // Gathered typed batches keep the dictionary column and share the
        // original interner — no re-encoding on the hot path.
        if !typed_out.is_empty() {
            let col = typed_out.tag_column(0).expect("gather keeps the tag column");
            prop_assert!(std::sync::Arc::ptr_eq(col.dict(), &dict));
        }

        // Reference model: the rows that survive both drop and mask.
        let expect: Vec<Tuple> = rows
            .iter()
            .enumerate()
            .filter(|&(_, &(_, dropped, keep))| dropped == 0 && keep == 1)
            .map(|(i, _)| tuples[i].clone())
            .collect();
        let arena_tuples = arena_out.into_tuples();
        let typed_tuples = typed_out.into_tuples();
        prop_assert_eq!(&arena_tuples, &expect);
        prop_assert_eq!(&typed_tuples, &expect);
        for t in &typed_tuples {
            match t.values[0] {
                Value::Tag(c) => {
                    let k = codes.iter().position(|&cc| cc == c).expect("known code");
                    prop_assert_eq!(dict.resolve(c).as_deref(), Some(pool[k].as_str()));
                }
                ref v => prop_assert!(false, "tag field materialised as {v:?}"),
            }
        }
    }

    /// Cost-model capacity estimates are always positive and respond
    /// monotonically to the per-tuple cost.
    #[test]
    fn cost_model_monotone(
        fast_us in 1u64..100,
        slow_extra in 1u64..1000,
        tuples in 1u64..10_000,
    ) {
        let interval = TimeDelta::from_millis(250);
        let mut fast = CostModel::new(1.0);
        fast.observe(TimeDelta::from_micros(fast_us * tuples), tuples);
        let mut slow = CostModel::new(1.0);
        slow.observe(TimeDelta::from_micros((fast_us + slow_extra) * tuples), tuples);
        let cf = fast.capacity(interval, 1);
        let cs = slow.capacity(interval, 1);
        prop_assert!(cf >= 1 && cs >= 1);
        prop_assert!(cf >= cs, "faster node must have >= capacity ({cf} vs {cs})");
    }
}
