//! Property-based tests over the WAL checkpoint codec: encode→decode is
//! lossless for every column layout a pane can hold (arena batches, typed
//! batches with F64/I64/Bool/Tag columns and their dictionaries, drop
//! bitmaps, NaN-carrying SIC values), and every corruption of the byte
//! stream — truncation at any offset, any flipped byte — maps to an
//! actionable [`WalError::Corrupt`] or a tolerated torn tail, never a
//! panic.

use proptest::prelude::*;
use themis_core::prelude::*;
use themis_core::wal::{decode_records, decode_records_tolerant, encode_record};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// An arena-layout batch: rows carry `Value` cells of every variant
/// (including raw tag codes, which arena batches store without a
/// dictionary), with an arbitrary drop bitmap.
fn arb_arena_batch() -> impl Strategy<Value = TupleBatch> {
    prop::collection::vec(
        (
            (0u64..1_000_000, 0.0f64..1.0), // ts, sic
            (
                i64::MIN..i64::MAX, // I64 cell
                -1.0e12f64..1.0e12, // F64 cell
                0u8..2,             // Bool cell
                0u32..1_000,        // raw tag code cell
            ),
            0u8..2, // dropped?
        ),
        0..24,
    )
    .prop_map(|rows| {
        let mut b = TupleBatch::with_capacity(4, rows.len());
        for &((ts, sic), (n, x, ok, code), _) in &rows {
            b.push_row(
                Timestamp(ts),
                Sic(sic),
                &[
                    Value::I64(n),
                    Value::F64(x),
                    Value::Bool(ok == 1),
                    Value::Tag(code),
                ],
            );
        }
        for (i, &(.., dropped)) in rows.iter().enumerate() {
            if dropped == 1 {
                b.drop_row(i);
            }
        }
        b
    })
}

/// A typed batch over a schema exercising all four column types, tags
/// drawn from a six-entry dictionary that is interned in full (so some
/// dictionary entries may go unreferenced by any row).
fn arb_typed_batch() -> impl Strategy<Value = TupleBatch> {
    prop::collection::vec(
        (
            (0u64..1_000_000, 0.0f64..1.0), // ts, sic
            (
                0usize..6,          // tag pool index
                -1.0e12f64..1.0e12, // F64 cell
                i64::MIN..i64::MAX, // I64 cell
                0u8..2,             // Bool cell
            ),
            0u8..2, // dropped?
        ),
        0..24,
    )
    .prop_map(|rows| {
        let schema = Schema::new([
            ("tag", FieldType::Tag),
            ("x", FieldType::F64),
            ("n", FieldType::I64),
            ("ok", FieldType::Bool),
        ]);
        let dict = schema
            .interner()
            .expect("tag schema has an interner")
            .clone();
        let codes: Vec<u32> = (0..6).map(|k| dict.intern(&format!("tag-{k}"))).collect();
        let mut b = TupleBatch::with_schema_capacity(schema, rows.len());
        for &((ts, sic), (k, x, n, ok), _) in &rows {
            b.push_row(
                Timestamp(ts),
                Sic(sic),
                &[
                    Value::Tag(codes[k]),
                    Value::F64(x),
                    Value::I64(n),
                    Value::Bool(ok == 1),
                ],
            );
        }
        for (i, &(.., dropped)) in rows.iter().enumerate() {
            if dropped == 1 {
                b.drop_row(i);
            }
        }
        b
    })
}

fn arb_pane() -> impl Strategy<Value = PaneRecord> {
    (
        (0u32..8, 0usize..3, 0usize..3, 0usize..2),
        (0u8..2, 0u64..u64::MAX),
        (0u8..2, arb_arena_batch(), arb_typed_batch()),
    )
        .prop_map(
            |((q, fragment, op, port), (kind, t), (layout, arena, typed))| PaneRecord {
                query: QueryId(q),
                fragment,
                op,
                port,
                key: if kind == 0 {
                    PaneKey::Time(t)
                } else {
                    PaneKey::Pending
                },
                batch: if layout == 0 { arena } else { typed },
            },
        )
}

/// SIC values are generated from raw bit patterns so the round-trip
/// property covers NaNs, infinities and subnormals bit-for-bit.
fn arb_snapshot() -> impl Strategy<Value = NodeSnapshot> {
    (
        0usize..64,
        prop::collection::vec((0u32..32, 0u64..u64::MAX), 0..8),
        prop::collection::vec(arb_pane(), 0..3),
    )
        .prop_map(|(node, sic, panes)| NodeSnapshot {
            node,
            sic: sic
                .into_iter()
                .map(|(q, bits)| (QueryId(q), Sic(f64::from_bits(bits))))
                .collect(),
            panes,
        })
}

fn arb_delta() -> impl Strategy<Value = SicDelta> {
    (0usize..64, 0u32..32, 0u64..u64::MAX).prop_map(|(node, q, bits)| SicDelta {
        node,
        query: QueryId(q),
        sic: Sic(f64::from_bits(bits)),
    })
}

// ---------------------------------------------------------------------------
// Semantic equality
// ---------------------------------------------------------------------------
//
// Restored typed batches carry a freshly re-interned dictionary, so
// `Schema` equality (which requires pointer-identical interners) can
// never hold across a round-trip, and codes may be remapped when panes
// share a decoded schema. Equality is therefore checked field by field:
// tags by their resolved strings, SIC by exact bit pattern.

fn batch_mismatch(a: &TupleBatch, b: &TupleBatch) -> Option<String> {
    if a.rows() != b.rows() {
        return Some(format!("rows {} vs {}", a.rows(), b.rows()));
    }
    if a.width() != b.width() {
        return Some(format!("width {} vs {}", a.width(), b.width()));
    }
    let fields = |t: &TupleBatch| -> Vec<(String, FieldType)> {
        t.schema()
            .map(|s| s.fields().map(|(n, ty)| (n.to_string(), ty)).collect())
            .unwrap_or_default()
    };
    if fields(a) != fields(b) {
        return Some(format!("schema {:?} vs {:?}", fields(a), fields(b)));
    }
    for i in 0..a.rows() {
        if a.is_live(i) != b.is_live(i) {
            return Some(format!(
                "row {i} liveness {} vs {}",
                a.is_live(i),
                b.is_live(i)
            ));
        }
        let (ta, tb) = (a.row(i).to_tuple(), b.row(i).to_tuple());
        if ta.ts != tb.ts {
            return Some(format!("row {i} ts {:?} vs {:?}", ta.ts, tb.ts));
        }
        if ta.sic.value().to_bits() != tb.sic.value().to_bits() {
            return Some(format!("row {i} sic bits {:?} vs {:?}", ta.sic, tb.sic));
        }
        for (f, (va, vb)) in ta.values.iter().zip(&tb.values).enumerate() {
            let same = match (va, vb) {
                (Value::Tag(ca), Value::Tag(cb)) => match (a.schema(), b.schema()) {
                    // Typed tags compare by resolved string; arena tags
                    // carry bare codes and must survive verbatim.
                    (Some(sa), Some(sb)) => {
                        let ra = sa.interner().and_then(|d| d.resolve(*ca));
                        let rb = sb.interner().and_then(|d| d.resolve(*cb));
                        ra == rb
                    }
                    _ => ca == cb,
                },
                _ => va == vb,
            };
            if !same {
                return Some(format!("row {i} field {f}: {va:?} vs {vb:?}"));
            }
        }
    }
    None
}

fn snapshot_mismatch(a: &NodeSnapshot, b: &NodeSnapshot) -> Option<String> {
    if a.node != b.node {
        return Some(format!("node {} vs {}", a.node, b.node));
    }
    let bits = |sic: &[(QueryId, Sic)]| -> Vec<(QueryId, u64)> {
        sic.iter().map(|&(q, s)| (q, s.value().to_bits())).collect()
    };
    if bits(&a.sic) != bits(&b.sic) {
        return Some(format!("sic table {:?} vs {:?}", a.sic, b.sic));
    }
    if a.panes.len() != b.panes.len() {
        return Some(format!("panes {} vs {}", a.panes.len(), b.panes.len()));
    }
    for (i, (pa, pb)) in a.panes.iter().zip(&b.panes).enumerate() {
        if (pa.query, pa.fragment, pa.op, pa.port, pa.key)
            != (pb.query, pb.fragment, pb.op, pb.port, pb.key)
        {
            return Some(format!("pane {i} address mismatch"));
        }
        if let Some(why) = batch_mismatch(&pa.batch, &pb.batch) {
            return Some(format!("pane {i} batch: {why}"));
        }
    }
    None
}

fn delta_mismatch(a: &SicDelta, b: &SicDelta) -> Option<String> {
    if a.node != b.node || a.query != b.query || a.sic.value().to_bits() != b.sic.value().to_bits()
    {
        return Some(format!("{a:?} vs {b:?}"));
    }
    None
}

fn record_mismatch(a: &WalRecord, b: &WalRecord) -> Option<String> {
    match (a, b) {
        (WalRecord::Snapshot(x), WalRecord::Snapshot(y)) => snapshot_mismatch(x, y),
        (WalRecord::SicDelta(x), WalRecord::SicDelta(y)) => delta_mismatch(x, y),
        _ => Some("record kind mismatch".into()),
    }
}

/// The byte ranges of each frame in an encoded stream, recovered by
/// walking the length prefixes.
fn frame_bounds(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        bounds.push((pos, end));
        pos = end;
    }
    bounds
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        encode_record(r, &mut buf);
    }
    buf
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    /// Encode→decode round-trips every snapshot and delta: window panes
    /// in both layouts (all column types, tag dictionaries, drop
    /// bitmaps) semantically identical, SIC values bit-identical.
    #[test]
    fn codec_round_trips_snapshots_and_deltas(
        snaps in prop::collection::vec(arb_snapshot(), 1..3),
        deltas in prop::collection::vec(arb_delta(), 0..12),
    ) {
        let records: Vec<WalRecord> = snaps
            .into_iter()
            .map(WalRecord::Snapshot)
            .chain(deltas.into_iter().map(WalRecord::SicDelta))
            .collect();
        let buf = encode_all(&records);

        let strict = decode_records(&buf).expect("valid stream decodes strictly");
        prop_assert_eq!(strict.len(), records.len());
        for (i, (orig, back)) in records.iter().zip(&strict).enumerate() {
            let why = record_mismatch(orig, back);
            prop_assert!(why.is_none(), "record {i}: {}", why.unwrap());
        }

        let (tolerant, torn) = decode_records_tolerant(&buf).expect("valid stream");
        prop_assert!(!torn, "intact stream reported a torn tail");
        prop_assert_eq!(tolerant.len(), records.len());
    }

    /// Truncating the stream at any byte never panics: the tolerant
    /// decoder returns exactly the complete frames and flags the torn
    /// tail, while the strict decoder reports the truncation offset.
    #[test]
    fn truncation_at_any_offset_is_detected(
        snap in arb_snapshot(),
        delta in arb_delta(),
        cut in 0usize..1 << 20,
    ) {
        let records = vec![WalRecord::Snapshot(snap), WalRecord::SicDelta(delta)];
        let buf = encode_all(&records);
        let bounds = frame_bounds(&buf);
        let cut = cut % (buf.len() + 1); // inclusive of the intact stream
        let truncated = &buf[..cut];
        let whole = bounds.iter().filter(|&&(_, end)| end <= cut).count();
        let at_boundary = cut == 0 || bounds.iter().any(|&(_, end)| end == cut);

        let (recovered, torn) =
            decode_records_tolerant(truncated).expect("truncation is always tolerated");
        prop_assert_eq!(recovered.len(), whole);
        prop_assert_eq!(torn, !at_boundary);
        for (orig, back) in records.iter().zip(&recovered) {
            prop_assert!(record_mismatch(orig, back).is_none());
        }

        let strict = decode_records(truncated);
        if at_boundary {
            prop_assert!(strict.is_ok());
        } else {
            let err = strict.expect_err("mid-frame cut must fail strict decode");
            prop_assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
            prop_assert!(err.to_string().contains("truncated frame"), "{err}");
        }
    }

    /// Flipping any checksum byte of any frame is a hard, actionable
    /// error naming the frame offset — in both decoders, since a
    /// complete frame with a bad CRC is damage, not a torn write.
    #[test]
    fn flipped_checksum_byte_is_a_hard_error(
        snap in arb_snapshot(),
        delta in arb_delta(),
        frame in 0usize..2,
        byte in 0usize..4,
        mask in 1u16..256,
    ) {
        let records = vec![WalRecord::Snapshot(snap), WalRecord::SicDelta(delta)];
        let mut buf = encode_all(&records);
        let (start, _) = frame_bounds(&buf)[frame];
        buf[start + 4 + byte] ^= mask as u8; // the CRC field sits after the length

        let strict = decode_records(&buf).expect_err("bad checksum must fail");
        prop_assert!(
            matches!(strict, WalError::Corrupt { offset, .. } if offset == start as u64),
            "{strict}"
        );
        prop_assert!(strict.to_string().contains("checksum mismatch"), "{strict}");

        let tolerant = decode_records_tolerant(&buf).expect_err("tolerance is for torn tails only");
        prop_assert!(tolerant.to_string().contains("checksum mismatch"), "{tolerant}");
    }

    /// Flipping any single byte anywhere in the stream never panics:
    /// decoding either succeeds (a flip in a length prefix can mimic a
    /// torn tail, which the tolerant decoder absorbs) or fails with a
    /// located, described corruption error.
    #[test]
    fn flipping_any_byte_never_panics(
        snap in arb_snapshot(),
        pos in 0usize..1 << 20,
        mask in 1u16..256,
    ) {
        let mut buf = encode_all(&[WalRecord::Snapshot(snap)]);
        let pos = pos % buf.len();
        buf[pos] ^= mask as u8;

        for result in [decode_records(&buf).map(|_| ()), decode_records_tolerant(&buf).map(|_| ())] {
            if let Err(err) = result {
                prop_assert!(matches!(&err, WalError::Corrupt { detail, .. } if !detail.is_empty()));
                prop_assert!(err.to_string().contains("wal corrupt at byte"), "{err}");
            }
        }
    }
}
