//! The shared rate-allocation model behind both §7.5 baselines.
//!
//! A deployment is abstracted as: per-query admitted source rate `r_q`
//! (tuples/second), bounded by the query's input rate, with per-node
//! capacity constraints `Σ_q load[n][q] · r_q ≤ cap_n` — `load[n][q]` is 1
//! when a fragment of `q` runs on node `n` (each admitted tuple is
//! processed once per traversed node) and 0 otherwise.

use themis_core::fairness::jain_index;

/// A rate-allocation problem instance.
#[derive(Debug, Clone)]
pub struct AllocationProblem {
    /// Per-query objective weight (FIT's query weights; all 1 in §7.5).
    pub weights: Vec<f64>,
    /// Per-query offered input rate (upper bound on `r_q`).
    pub input_rates: Vec<f64>,
    /// `load[n][q]`: processing demand on node `n` per unit of `r_q`.
    pub load: Vec<Vec<f64>>,
    /// Per-node capacity (same unit as rates).
    pub capacities: Vec<f64>,
}

impl AllocationProblem {
    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.input_rates.len()
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.capacities.len()
    }

    /// Builds the uniform-load instance used throughout §7.5: every query
    /// has fragments on a set of nodes; each admitted tuple loads each of
    /// those nodes by 1.
    pub fn uniform(input_rates: Vec<f64>, hosts: Vec<Vec<usize>>, capacities: Vec<f64>) -> Self {
        let n_nodes = capacities.len();
        let mut load = vec![vec![0.0; input_rates.len()]; n_nodes];
        for (q, hs) in hosts.iter().enumerate() {
            for &n in hs {
                load[n][q] = 1.0;
            }
        }
        AllocationProblem {
            weights: vec![1.0; input_rates.len()],
            input_rates,
            load,
            capacities,
        }
    }

    /// Checks an allocation for feasibility within a tolerance.
    pub fn is_feasible(&self, rates: &[f64], tol: f64) -> bool {
        if rates.len() != self.n_queries() {
            return false;
        }
        for (q, &r) in rates.iter().enumerate() {
            if r < -tol || r > self.input_rates[q] + tol {
                return false;
            }
        }
        for (n, row) in self.load.iter().enumerate() {
            let used: f64 = row.iter().zip(rates.iter()).map(|(a, r)| a * r).sum();
            if used > self.capacities[n] + tol {
                return false;
            }
        }
        true
    }
}

/// An allocation outcome with the fairness views the paper reports.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Admitted rate per query.
    pub rates: Vec<f64>,
    /// Objective value reported by the solver.
    pub objective: f64,
}

impl Allocation {
    /// Fraction of input each query gets (the closest analogue of a SIC
    /// value for rate-based schemes).
    pub fn rate_fractions(&self, problem: &AllocationProblem) -> Vec<f64> {
        self.rates
            .iter()
            .zip(problem.input_rates.iter())
            .map(|(&r, &cap)| if cap > 0.0 { r / cap } else { 0.0 })
            .collect()
    }

    /// Jain's index over the rate fractions.
    pub fn jain_rate_fractions(&self, problem: &AllocationProblem) -> f64 {
        jain_index(&self.rate_fractions(problem))
    }

    /// Jain's index over normalised log-output utilities
    /// (`log(1+r) / log(1+input)`), the view §7.5 uses for \[44\].
    pub fn jain_log_utilities(&self, problem: &AllocationProblem) -> f64 {
        let utils: Vec<f64> = self
            .rates
            .iter()
            .zip(problem.input_rates.iter())
            .map(|(&r, &cap)| {
                if cap > 0.0 {
                    (1.0 + r).ln() / (1.0 + cap).ln()
                } else {
                    0.0
                }
            })
            .collect();
        jain_index(&utils)
    }

    /// Queries admitted at (nearly) full input rate.
    pub fn fully_admitted(&self, problem: &AllocationProblem, tol: f64) -> usize {
        self.rates
            .iter()
            .zip(problem.input_rates.iter())
            .filter(|&(&r, &cap)| cap > 0.0 && r >= cap - tol)
            .count()
    }

    /// Queries completely starved.
    pub fn starved(&self, tol: f64) -> usize {
        self.rates.iter().filter(|&&r| r <= tol).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_problem() -> AllocationProblem {
        AllocationProblem::uniform(
            vec![10.0, 10.0, 10.0],
            vec![vec![0], vec![1], vec![0, 1]],
            vec![15.0, 15.0],
        )
    }

    #[test]
    fn uniform_builder_shapes_load() {
        let p = two_node_problem();
        assert_eq!(p.n_queries(), 3);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.load[0], vec![1.0, 0.0, 1.0]);
        assert_eq!(p.load[1], vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn feasibility_checks() {
        let p = two_node_problem();
        assert!(p.is_feasible(&[10.0, 10.0, 5.0], 1e-9));
        assert!(!p.is_feasible(&[10.0, 10.0, 6.0], 1e-9), "node capacity");
        assert!(!p.is_feasible(&[11.0, 0.0, 0.0], 1e-9), "input bound");
        assert!(!p.is_feasible(&[-1.0, 0.0, 0.0], 1e-9), "negative rate");
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9), "shape");
    }

    #[test]
    fn allocation_views() {
        let p = two_node_problem();
        let a = Allocation {
            rates: vec![10.0, 10.0, 0.0],
            objective: 20.0,
        };
        assert_eq!(a.rate_fractions(&p), vec![1.0, 1.0, 0.0]);
        assert_eq!(a.fully_admitted(&p, 1e-9), 2);
        assert_eq!(a.starved(1e-9), 1);
        // Two full + one starved: J = (2)^2/(3*2) = 2/3.
        assert!((a.jain_rate_fractions(&p) - 2.0 / 3.0).abs() < 1e-9);
        assert!(a.jain_log_utilities(&p) < 1.0);
    }
}
