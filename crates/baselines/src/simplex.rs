//! A small dense-LP simplex solver.
//!
//! §7.5 of the paper solves the FIT \[34\] throughput-maximisation problem
//! with GLPK; this module is the in-repo substitute. It solves LPs in the
//! canonical form
//!
//! `maximize c·x  subject to  A·x ≤ b,  x ≥ 0,  b ≥ 0`
//!
//! with the standard tableau method (slack-variable initial basis, Bland's
//! rule, so no cycling and no phase-1 needed). The problems arising from
//! load shedding — rate variables bounded by input rates and node
//! capacities — are exactly of this shape.

/// An LP in canonical form: maximise `objective · x` subject to
/// `constraints[i].0 · x ≤ constraints[i].1` and `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Lp {
    /// Objective coefficients (length = number of variables).
    pub objective: Vec<f64>,
    /// Constraints `(a, b)` meaning `a · x ≤ b` with `b ≥ 0`.
    pub constraints: Vec<(Vec<f64>, f64)>,
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal assignment.
    pub x: Vec<f64>,
    /// Objective value at the optimum.
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
}

/// Solver failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The LP is unbounded above.
    Unbounded,
    /// A constraint has negative right-hand side (not canonical form).
    NegativeRhs,
    /// Dimension mismatch between objective and constraint rows.
    BadShape,
    /// Pivot limit exceeded (defensive; Bland's rule should prevent this).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::NegativeRhs => write!(f, "constraint rhs must be non-negative"),
            LpError::BadShape => write!(f, "constraint row length mismatch"),
            LpError::IterationLimit => write!(f, "pivot limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

const EPS: f64 = 1e-9;

/// Solves the LP; see module docs for the accepted form.
pub fn solve(lp: &Lp) -> Result<LpSolution, LpError> {
    let n = lp.objective.len();
    let m = lp.constraints.len();
    for (a, b) in &lp.constraints {
        if a.len() != n {
            return Err(LpError::BadShape);
        }
        if *b < 0.0 {
            return Err(LpError::NegativeRhs);
        }
    }

    // Tableau: m rows of [A | I | b], plus objective row [-c | 0 | 0].
    let cols = n + m + 1;
    let mut t = vec![vec![0.0; cols]; m + 1];
    for (i, (a, b)) in lp.constraints.iter().enumerate() {
        t[i][..n].copy_from_slice(a);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = *b;
    }
    for (cell, c) in t[m].iter_mut().zip(lp.objective.iter()) {
        *cell = -c;
    }
    // basis[i] = variable index basic in row i (starts as the slacks).
    let mut basis: Vec<usize> = (n..n + m).collect();

    let max_pivots = 50 * (n + m).max(10);
    let mut iterations = 0;
    // Bland's rule: entering variable = smallest index with negative
    // reduced cost; loop until no candidate remains (optimum reached).
    while let Some(pivot_col) = (0..n + m).find(|&j| t[m][j] < -EPS) {
        // Ratio test; Bland tie-break on the basic variable index.
        let mut pivot_row: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][pivot_col] > EPS {
                let ratio = t[i][cols - 1] / t[i][pivot_col];
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && pivot_row.map(|r| basis[i] < basis[r]).unwrap_or(true));
                if better {
                    best_ratio = ratio;
                    pivot_row = Some(i);
                }
            }
        }
        let Some(r) = pivot_row else {
            return Err(LpError::Unbounded);
        };
        // Pivot.
        let pv = t[r][pivot_col];
        for v in t[r].iter_mut() {
            *v /= pv;
        }
        for i in 0..=m {
            if i != r {
                let factor = t[i][pivot_col];
                if factor.abs() > EPS {
                    let row_r = t[r].clone();
                    for (v, rv) in t[i].iter_mut().zip(row_r.iter()) {
                        *v -= factor * rv;
                    }
                }
            }
        }
        basis[r] = pivot_col;
        iterations += 1;
        if iterations > max_pivots {
            return Err(LpError::IterationLimit);
        }
    }

    let mut x = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = t[i][cols - 1];
        }
    }
    let objective = lp.objective.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
    Ok(LpSolution {
        x,
        objective,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(objective: Vec<f64>, constraints: Vec<(Vec<f64>, f64)>) -> Lp {
        Lp {
            objective,
            constraints,
        }
    }

    #[test]
    fn textbook_two_variable() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Optimum (2, 6), objective 36.
        let s = solve(&lp(
            vec![3.0, 5.0],
            vec![
                (vec![1.0, 0.0], 4.0),
                (vec![0.0, 2.0], 12.0),
                (vec![3.0, 2.0], 18.0),
            ],
        ))
        .unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6, "{s:?}");
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_zero_rhs() {
        // max x s.t. x <= 0: optimum 0.
        let s = solve(&lp(vec![1.0], vec![(vec![1.0], 0.0)])).unwrap();
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn unbounded_detected() {
        // max x with constraint on another variable only.
        let r = solve(&lp(vec![1.0, 0.0], vec![(vec![0.0, 1.0], 5.0)]));
        assert_eq!(
            r.err().map(|e| format!("{e}")),
            Some("LP is unbounded".into())
        );
    }

    #[test]
    fn negative_rhs_rejected() {
        let r = solve(&lp(vec![1.0], vec![(vec![1.0], -1.0)]));
        assert!(matches!(r, Err(LpError::NegativeRhs)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let r = solve(&lp(vec![1.0, 1.0], vec![(vec![1.0], 1.0)]));
        assert!(matches!(r, Err(LpError::BadShape)));
    }

    #[test]
    fn knapsack_like_throughput() {
        // The FIT §7.5 shape: 6 queries, one shared node of capacity 3,
        // each rate bounded by 1, equal weights. Optimum: total 3 —
        // the LP is indifferent about which queries win, giving extreme
        // (unfair) vertex solutions.
        let n = 6;
        let mut cons = vec![(vec![1.0; n], 3.0)];
        for q in 0..n {
            let mut a = vec![0.0; n];
            a[q] = 1.0;
            cons.push((a, 1.0));
        }
        let s = solve(&lp(vec![1.0; n], cons)).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        // Vertex solution: exactly three queries at 1, rest at 0.
        let full = s.x.iter().filter(|&&v| v > 1.0 - 1e-6).count();
        let zero = s.x.iter().filter(|&&v| v < 1e-6).count();
        assert_eq!(full, 3);
        assert_eq!(zero, 3);
    }

    #[test]
    fn weighted_objective_prefers_heavy_query() {
        // Two queries share capacity 1; the weighted one wins everything.
        let s = solve(&lp(
            vec![2.0, 1.0],
            vec![
                (vec![1.0, 1.0], 1.0),
                (vec![1.0, 0.0], 1.0),
                (vec![0.0, 1.0], 1.0),
            ],
        ))
        .unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-6);
        assert!(s.x[1].abs() < 1e-6);
    }
}
