//! The Zhao et al. \[44\] baseline of §7.5: maximise the *sum of concave
//! utilities* `Σ log(r_q)` of query output rates under node capacity
//! constraints (proportional fairness on rates).
//!
//! The paper solved this program in Matlab; here a dual (sub)gradient
//! method exploits the closed-form primal solution of the separable
//! logarithmic objective: `r_q = min(input_q, 1 / Σ_n λ_n a_nq)`.

use crate::allocation::{Allocation, AllocationProblem};

/// Solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct UtilityOpts {
    /// Dual iterations.
    pub iterations: usize,
    /// Multiplicative dual step size.
    pub step: f64,
}

impl Default for UtilityOpts {
    fn default() -> Self {
        UtilityOpts {
            iterations: 5_000,
            step: 0.05,
        }
    }
}

/// Maximises `Σ log(r_q)` subject to the problem's constraints.
pub fn solve_log_utility(problem: &AllocationProblem, opts: UtilityOpts) -> Allocation {
    let n = problem.n_queries();
    let m = problem.n_nodes();
    let mut lambda = vec![1.0f64; m];
    let mut rates = vec![0.0f64; n];
    for _ in 0..opts.iterations {
        // Primal update: KKT stationarity for log utility.
        for (q, rate) in rates.iter_mut().enumerate() {
            let price: f64 = (0..m).map(|nn| lambda[nn] * problem.load[nn][q]).sum();
            *rate = if price > 0.0 {
                (1.0 / price).min(problem.input_rates[q])
            } else {
                problem.input_rates[q]
            };
        }
        // Dual update: multiplicative weights on constraint violation.
        for (nn, l) in lambda.iter_mut().enumerate() {
            let used: f64 = (0..n).map(|q| problem.load[nn][q] * rates[q]).sum();
            let cap = problem.capacities[nn].max(1e-12);
            let violation = (used - cap) / cap;
            *l = (*l * (opts.step * violation).exp()).max(1e-12);
        }
    }
    // Final feasibility projection: uniformly scale down if any constraint
    // is still (slightly) violated.
    let mut scale = 1.0f64;
    for nn in 0..m {
        let used: f64 = (0..n).map(|q| problem.load[nn][q] * rates[q]).sum();
        if used > problem.capacities[nn] && used > 0.0 {
            scale = scale.min(problem.capacities[nn] / used);
        }
    }
    for r in rates.iter_mut() {
        *r *= scale;
    }
    let objective = rates.iter().map(|&r| (r.max(1e-12)).ln()).sum();
    Allocation { rates, objective }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_equal_queries_split_evenly() {
        // Proportional fairness on one node: equal split of capacity.
        let p = AllocationProblem::uniform(
            vec![100.0; 4],
            (0..4).map(|_| vec![0]).collect(),
            vec![40.0],
        );
        let a = solve_log_utility(&p, UtilityOpts::default());
        assert!(p.is_feasible(&a.rates, 1e-6));
        for &r in &a.rates {
            assert!((r - 10.0).abs() < 0.5, "rates {:?}", a.rates);
        }
        assert!(a.jain_rate_fractions(&p) > 0.999);
    }

    #[test]
    fn input_bound_binds_when_capacity_abounds() {
        let p = AllocationProblem::uniform(vec![5.0, 5.0], vec![vec![0], vec![0]], vec![1000.0]);
        let a = solve_log_utility(&p, UtilityOpts::default());
        assert!((a.rates[0] - 5.0).abs() < 1e-3);
        assert!((a.rates[1] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn multi_node_queries_pay_for_every_hop() {
        // One query spans both nodes, two local queries each use one node.
        // The spanning query is charged on both constraints, so it gets
        // less than the local queries (the classic proportional-fairness
        // outcome).
        let p = AllocationProblem::uniform(
            vec![100.0; 3],
            vec![vec![0], vec![1], vec![0, 1]],
            vec![30.0, 30.0],
        );
        let a = solve_log_utility(&p, UtilityOpts::default());
        assert!(p.is_feasible(&a.rates, 1e-6));
        assert!(a.rates[2] < a.rates[0], "{:?}", a.rates);
        assert!(a.rates[2] < a.rates[1]);
        // Proportional fairness: local 20, spanning 10.
        assert!((a.rates[0] - 20.0).abs() < 1.0, "{:?}", a.rates);
        assert!((a.rates[2] - 10.0).abs() < 1.0, "{:?}", a.rates);
    }

    #[test]
    fn never_starves_anyone() {
        // Unlike FIT, log utility gives every query a positive rate.
        let p = AllocationProblem::uniform(
            vec![10.0; 60],
            (0..60).map(|_| vec![0, 1]).collect(),
            vec![35.0, 35.0],
        );
        let a = solve_log_utility(&p, UtilityOpts::default());
        assert!(p.is_feasible(&a.rates, 1e-6));
        assert_eq!(a.starved(1e-6), 0);
        assert!(
            a.jain_rate_fractions(&p) > 0.99,
            "equal queries, equal rates"
        );
    }

    #[test]
    fn heterogeneous_deployment_is_less_than_perfectly_fair() {
        // The §7.5 "complex deployment" shape: queries with different
        // fragment counts randomly placed over 4 nodes get unequal prices,
        // so the log-utility solution is fair-ish but not SIC-fair.
        let hosts: Vec<Vec<usize>> = (0..60)
            .map(|q| match q % 3 {
                0 => vec![q % 4, (q + 1) % 4, (q + 2) % 4],
                1 => vec![q % 4, (q + 1) % 4],
                _ => vec![q % 4, (q + 3) % 4],
            })
            .collect();
        let p = AllocationProblem::uniform(vec![10.0; 60], hosts, vec![40.0; 4]);
        let a = solve_log_utility(&p, UtilityOpts::default());
        assert!(p.is_feasible(&a.rates, 1e-5));
        let j = a.jain_log_utilities(&p);
        assert!(j > 0.5 && j < 0.999, "jain {j}");
    }
}
