//! The FIT-style baseline of §7.5 (Tatbul et al. \[34\]): distributed load
//! shedding that maximises the *sum* of weighted query throughputs.
//!
//! The paper shows the resulting LP is "clearly not a fair solution": on a
//! 2-node deployment of 60 two-fragment AVG-all queries, the optimum lets 3
//! queries process all their input, one a fraction, and starves the rest.

use crate::allocation::{Allocation, AllocationProblem};
use crate::simplex::{solve, Lp, LpError};

/// Solves the FIT throughput-maximisation LP:
///
/// `max Σ w_q r_q  s.t.  Σ_q load[n][q]·r_q ≤ cap_n, 0 ≤ r_q ≤ input_q`.
pub fn solve_fit(problem: &AllocationProblem) -> Result<Allocation, LpError> {
    let n = problem.n_queries();
    let mut constraints: Vec<(Vec<f64>, f64)> = Vec::with_capacity(problem.n_nodes() + n);
    for (row, &cap) in problem.load.iter().zip(problem.capacities.iter()) {
        constraints.push((row.clone(), cap));
    }
    for q in 0..n {
        let mut a = vec![0.0; n];
        a[q] = 1.0;
        constraints.push((a, problem.input_rates[q]));
    }
    let lp = Lp {
        objective: problem.weights.clone(),
        constraints,
    };
    let s = solve(&lp)?;
    Ok(Allocation {
        rates: s.x,
        objective: s.objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §7.5 set-up: queries whose two fragments are co-located on the
    /// same two nodes ("all operators connecting to sources are collocated
    /// on the same node"), equal weights 1. With capacity for only a few
    /// queries, the LP starves almost everyone.
    #[test]
    fn paper_setup_starves_most_queries() {
        let n_queries = 60;
        let input = 10.0;
        // Every query loads both nodes; each node fits 3.5 queries' input.
        let hosts: Vec<Vec<usize>> = (0..n_queries).map(|_| vec![0, 1]).collect();
        let p = AllocationProblem::uniform(vec![input; n_queries], hosts, vec![35.0, 35.0]);
        let a = solve_fit(&p).unwrap();
        assert!(p.is_feasible(&a.rates, 1e-6));
        // Objective: total throughput equals the bottleneck capacity.
        assert!((a.objective - 35.0).abs() < 1e-6);
        // The vertex solution: 3 full queries, 1 partial, 56 starved —
        // exactly the unfairness the paper reports.
        assert_eq!(a.fully_admitted(&p, 1e-6), 3);
        assert_eq!(a.starved(1e-6), n_queries - 4);
        // Hugely unfair by Jain's index: close to 3.5/60.
        let jain = a.jain_rate_fractions(&p);
        assert!(jain < 0.1, "jain {jain}");
    }

    #[test]
    fn weights_steer_admission() {
        let mut p =
            AllocationProblem::uniform(vec![10.0, 10.0], vec![vec![0], vec![0]], vec![10.0]);
        p.weights = vec![1.0, 2.0];
        let a = solve_fit(&p).unwrap();
        assert!((a.rates[1] - 10.0).abs() < 1e-6, "heavy query wins");
        assert!(a.rates[0].abs() < 1e-6);
    }

    #[test]
    fn underloaded_admits_everything() {
        let p = AllocationProblem::uniform(vec![5.0, 5.0], vec![vec![0], vec![0]], vec![100.0]);
        let a = solve_fit(&p).unwrap();
        assert_eq!(a.fully_admitted(&p, 1e-6), 2);
        assert!((a.jain_rate_fractions(&p) - 1.0).abs() < 1e-9);
    }
}
