//! # themis-baselines
//!
//! The related-work baselines of §7.5:
//!
//! * [`fit`] — FIT-style distributed load shedding (Tatbul et al. \[34\]):
//!   maximise the sum of weighted query throughputs, solved as an LP with
//!   the in-repo [`simplex`] solver (the paper used GLPK);
//! * [`utility`] — Zhao et al. \[44\]: maximise `Σ log(r_q)` of output rates
//!   (proportional fairness), solved by dual gradient (the paper used
//!   Matlab);
//! * [`allocation`] — the shared rate-allocation model plus the fairness
//!   views (rate fractions, normalised log utilities) the paper reports.
//!
//! ```
//! use themis_baselines::prelude::*;
//!
//! // Two queries share one node; FIT starves one, log utility splits.
//! let p = AllocationProblem::uniform(
//!     vec![10.0, 10.0],
//!     vec![vec![0], vec![0]],
//!     vec![10.0],
//! );
//! let fit = solve_fit(&p).unwrap();
//! assert_eq!(fit.starved(1e-6), 1);
//! let pf = solve_log_utility(&p, UtilityOpts::default());
//! assert_eq!(pf.starved(1e-6), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod fit;
pub mod simplex;
pub mod utility;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::allocation::{Allocation, AllocationProblem};
    pub use crate::fit::solve_fit;
    pub use crate::simplex::{solve, Lp, LpError, LpSolution};
    pub use crate::utility::{solve_log_utility, UtilityOpts};
}
