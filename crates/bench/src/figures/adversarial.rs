//! Adversarial tick-gaming: can a strategic source inflate its SIC share
//! by phase-locking its bursts against the shedding tick?
//!
//! The strategic source ([`RatePattern::Adversarial`]) emits its entire
//! per-tick volume in the first beat after each tick boundary and stays
//! silent for the rest — identical long-run demand to an honest steady
//! source, but by the time the next shedding tick fires, its batches are
//! the **oldest** in the buffer. Age-ordered policies (`fifo`) keep
//! exactly those; id-ordered ones (`priority`) favour it because it
//! registered first. A SIC-balancing shedder should not care *when* the
//! tuples arrived — only what information survives per source — so under
//! the `balance-sic` family the strategic source's advantage over its
//! honest peers must stay within [`ADVERSARIAL_EPSILON`].
//!
//! The experiment runs one overloaded node (strategic query attached
//! first, 7 honest peers at the same mean rate, capacity at half the
//! demand) under **every registered policy**: the SIC-aware rows are the
//! gate, the rest are documentation of how much a timing attack extracts
//! from timing-sensitive baselines. Run by name (and by the CI smoke) it
//! exits non-zero if any `balance-sic*` row leaks more than epsilon;
//! the full table is written to `results/BENCH_adversarial.json`.

use std::time::Duration;

use themis_core::prelude::*;
use themis_core::shedder::{registered_policies, Policy};
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Maximum tolerated SIC advantage of the strategic source over the mean
/// of its honest peers, under the SIC-aware (`balance-sic*`) policies.
pub const ADVERSARIAL_EPSILON: f64 = 0.15;

/// One policy's outcome under the attack.
#[derive(Debug)]
pub struct AdversarialRow {
    /// Policy name (registry key).
    pub policy: String,
    /// Whether the policy sheds on SIC (the `balance-sic` family) — the
    /// rows the gate asserts on.
    pub sic_aware: bool,
    /// Mean sampled SIC of the strategic query.
    pub strategic_sic: f64,
    /// Mean of the honest queries' mean SICs.
    pub honest_mean_sic: f64,
    /// Jain's index over the honest peers.
    pub honest_jain: f64,
    /// Fraction of arrived tuples shed.
    pub shed_fraction: f64,
}

impl AdversarialRow {
    /// The strategic source's relative SIC advantage over its peers
    /// (0 = perfectly fair, 1 = double the honest share).
    pub fn advantage(&self) -> f64 {
        if self.honest_mean_sic <= 0.0 {
            return if self.strategic_sic > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        (self.strategic_sic - self.honest_mean_sic) / self.honest_mean_sic
    }

    /// Gate for SIC-aware rows: advantage within epsilon, with the node
    /// genuinely overloaded.
    pub fn within_epsilon(&self) -> bool {
        self.advantage() <= ADVERSARIAL_EPSILON && self.shed_fraction > 0.1
    }
}

/// Outcome across all registered policies.
#[derive(Debug)]
pub struct AdversarialOutcome {
    /// Honest peers per run.
    pub honest: usize,
    /// Per-source mean rate (strategic and honest alike), t/s.
    pub rate_tps: u32,
    /// Enforced node capacity, t/s (half the demand).
    pub capacity_tps: u32,
    /// The shedding tick the strategic source phase-locks against.
    pub tick_ms: u64,
    /// One row per policy.
    pub rows: Vec<AdversarialRow>,
}

impl AdversarialOutcome {
    /// The gate: every SIC-aware policy holds the strategic source
    /// within epsilon.
    pub fn sic_policies_hold(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.sic_aware)
            .all(AdversarialRow::within_epsilon)
    }
}

/// Runs the attack under one policy and measures the strategic share.
fn run_policy(policy: Policy, secs: u64, seed: u64) -> AdversarialRow {
    let honest = 7usize;
    let rate = 200u32;
    let tick = TimeDelta::from_millis(250);
    // 20 batches/s: the 50 ms emission interval divides the 250 ms tick,
    // so the adversarial mean factor is exactly 1 (honest-looking).
    let strategic_profile = SourceProfile::steady(rate, 20, Dataset::Uniform)
        .with_pattern(RatePattern::Adversarial { tick });
    let honest_profile = SourceProfile::steady(rate, 20, Dataset::Uniform);
    let stw = TimeDelta::from_secs(2);
    let warmup = TimeDelta::from_micros(stw.as_micros() + 500_000);
    // Capacity at half the declared demand: every tick must shed ~50%.
    let capacity = (honest + 1) as u32 * rate / 2;

    let scenario = ScenarioBuilder::new("adversarial", seed)
        .nodes(1)
        .capacity_tps(capacity)
        .shedding_interval(tick)
        .stw_window(stw)
        .warmup(warmup)
        // Attached first: QueryId 0, the most favourable spot an
        // id-ordered baseline can hand the attacker.
        .add_queries(Template::Avg, 1, strategic_profile)
        .add_queries(Template::Avg, honest, honest_profile)
        .build()
        .expect("placement");
    let strategic = scenario.queries[0].id;

    let policy_name = policy.name().to_string();
    let mut engine = Engine::start(
        &scenario,
        EngineConfig {
            policy,
            enforce_capacity: true,
            record_series: true,
            ..Default::default()
        },
    );
    engine.run_for(Duration::from_micros(warmup.as_micros()));
    engine.run_for(Duration::from_secs(secs.max(2)));
    let report = engine.finish();

    let strategic_sic = report
        .per_query_sic
        .iter()
        .find(|&&(q, _)| q == strategic)
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    let honest_sics: Vec<f64> = report
        .per_query_sic
        .iter()
        .filter(|&&(q, _)| q != strategic)
        .map(|&(_, s)| s)
        .collect();
    let honest_mean = if honest_sics.is_empty() {
        0.0
    } else {
        honest_sics.iter().sum::<f64>() / honest_sics.len() as f64
    };

    AdversarialRow {
        sic_aware: policy_name.starts_with("balance-sic"),
        policy: policy_name,
        strategic_sic,
        honest_mean_sic: honest_mean,
        honest_jain: jain_index(&honest_sics),
        shed_fraction: report.shed_fraction(),
    }
}

/// Runs the attack under every registered policy.
pub fn adversarial(secs: u64, seed: u64) -> AdversarialOutcome {
    let rows = registered_policies()
        .into_iter()
        .map(|p| run_policy(p, secs, seed))
        .collect();
    AdversarialOutcome {
        honest: 7,
        rate_tps: 200,
        capacity_tps: 8 * 200 / 2,
        tick_ms: 250,
        rows,
    }
}

/// Renders the per-policy attack table.
pub fn render(out: &AdversarialOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Adversarial tick-gaming: 1 strategic + {} honest at {} t/s, capacity {} t/s, tick {} ms",
            out.honest, out.rate_tps, out.capacity_tps, out.tick_ms
        ),
        &[
            "policy",
            "strategic-sic",
            "honest-mean-sic",
            "advantage",
            "honest-jain",
            "shed",
            "gate",
        ],
    );
    for r in &out.rows {
        t.row(vec![
            r.policy.clone(),
            f(r.strategic_sic),
            f(r.honest_mean_sic),
            format!("{:+.1}%", r.advantage() * 100.0),
            f(r.honest_jain),
            format!("{:.1}%", r.shed_fraction * 100.0),
            if r.sic_aware {
                if r.within_epsilon() { "pass" } else { "FAIL" }.to_string()
            } else {
                "(documented)".to_string()
            },
        ]);
    }
    t
}

/// Serialises the outcome for `results/BENCH_adversarial.json`.
pub fn to_json(out: &AdversarialOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"honest\": {},\n  \"rate_tps\": {},\n  \"capacity_tps\": {},\n  \"tick_ms\": {},\n",
        out.honest, out.rate_tps, out.capacity_tps, out.tick_ms
    ));
    s.push_str(&format!(
        "  \"epsilon\": {ADVERSARIAL_EPSILON},\n  \"sic_policies_hold\": {},\n  \"rows\": [\n",
        out.sic_policies_hold()
    ));
    for (i, r) in out.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"sic_aware\": {}, \"strategic_sic\": {:.6}, \"honest_mean_sic\": {:.6}, \"advantage\": {:.6}, \"honest_jain\": {:.6}, \"shed_fraction\": {:.6}}}{}\n",
            r.policy,
            r.sic_aware,
            r.strategic_sic,
            r.honest_mean_sic,
            r.advantage(),
            r.honest_jain,
            r.shed_fraction,
            if i + 1 < out.rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
