//! §7.3 / §7.4 — scalability (Figures 12, 13) and burstiness / wide-area
//! behaviour (Figure 14).

use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::figures::fairness::FairnessPoint;
use crate::scenarios::{
    add_complex_mix_varied, capacity_for_overload, complex_mix, mix_sources_per_fragment, Scale,
};
use crate::table::{f, TextTable};

fn point(x: String, report: &SimReport) -> FairnessPoint {
    FairnessPoint {
        x,
        policy: report.policy.clone(),
        mean_sic: report.fairness.mean,
        jain: report.fairness.jain,
        std: report.fairness.std,
    }
}

/// Figure 12: a fixed set of queries over a growing number of nodes, Zipf
/// fragment placement. Mean SIC grows with capacity, Jain stays near 1.
pub fn fig12(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let node_counts = [9usize, 12, 18, 24];
    let n_queries = scale.n(120);
    // Fixed per-node capacity: at 9 nodes the system is heavily
    // overloaded, at 24 nodes mildly.
    let total_fragments = n_queries as f64 * 3.5;
    let demand = total_fragments * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(demand / 18.0, 2.5);
    let mut out = Vec::new();
    for &nodes in &node_counts {
        let b = ScenarioBuilder::new(format!("fig12-{nodes}"), seed)
            .nodes(nodes)
            .capacity_tps(capacity)
            .placement(PlacementPolicy::Zipf { exponent: 1.0 })
            .duration(scale.duration)
            .warmup(scale.warmup);
        let scn = add_complex_mix_varied(
            b,
            n_queries,
            &[1, 2, 3, 4, 5, 6],
            scale.profile(Dataset::Uniform),
        )
        .build()
        .expect("placement");
        let report = run_scenario(scn, SimConfig::default());
        out.push(point(nodes.to_string(), &report));
    }
    out
}

/// Figure 13: growing query counts on a fixed 18-node deployment.
pub fn fig13(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let query_counts = [60usize, 120, 180, 240, 300];
    let demand_at_180 =
        scale.n(180) as f64 * 3.5 * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(demand_at_180 / 18.0, 3.0);
    let mut out = Vec::new();
    for &count in &query_counts {
        let b = ScenarioBuilder::new(format!("fig13-{count}"), seed)
            .nodes(18)
            .placement(PlacementPolicy::UniformRandom)
            .capacity_tps(capacity)
            .duration(scale.duration)
            .warmup(scale.warmup);
        let scn = add_complex_mix_varied(
            b,
            scale.n(count),
            &[1, 2, 3, 4, 5, 6],
            scale.profile(Dataset::Uniform),
        )
        .build()
        .expect("placement");
        let report = run_scenario(scn, SimConfig::default());
        out.push(point(count.to_string(), &report));
    }
    out
}

/// Figure 14: mean SIC under {LAN, WAN} x {steady, bursty} deployments for
/// 20 and 40 queries of the two-fragment complex workload.
pub fn fig14(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let deployments: [(&str, TimeDelta, RatePattern); 4] = [
        ("LAN", TimeDelta::from_millis(5), RatePattern::Steady),
        ("FSPS", TimeDelta::from_millis(50), RatePattern::Steady),
        (
            "LAN-bursty",
            TimeDelta::from_millis(5),
            RatePattern::PAPER_BURSTY,
        ),
        (
            "FSPS-bursty",
            TimeDelta::from_millis(50),
            RatePattern::PAPER_BURSTY,
        ),
    ];
    let mut out = Vec::new();
    for &(name, latency, pattern) in &deployments {
        for &count in &[20usize, 40] {
            let n = scale.n(count);
            let demand = n as f64 * 2.0 * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
            let capacity = capacity_for_overload(demand / 4.0, 2.0);
            let profile = scale.profile(Dataset::Uniform).with_pattern(pattern);
            let mut b = ScenarioBuilder::new(format!("fig14-{name}-{count}"), seed)
                .nodes(4)
                .placement(PlacementPolicy::UniformRandom)
                .capacity_tps(capacity)
                .link_latency(latency)
                .duration(scale.duration)
                .warmup(scale.warmup);
            for i in 0..n {
                b = b.add_queries(complex_mix(2, i), 1, profile);
            }
            let scn = b.build().expect("placement");
            let report = run_scenario(scn, SimConfig::default());
            out.push(point(format!("{name}/{count}q"), &report));
        }
    }
    out
}

/// Renders scalability points (same columns as the fairness figures).
pub fn render(title: &str, x_name: &str, points: &[FairnessPoint]) -> TextTable {
    let mut t = TextTable::new(title, &[x_name, "policy", "mean-sic", "jain", "std"]);
    for p in points {
        t.row(vec![
            p.x.clone(),
            p.policy.to_string(),
            f(p.mean_sic),
            f(p.jain),
            f(p.std),
        ]);
    }
    t
}
