//! Row path vs. batch path on the hot loops: the columnar-batch
//! micro-benchmark behind the `batching` experiment.
//!
//! The workspace's hot loops moved `Vec<Tuple>` until the columnar
//! refactor: every tuple owned a heap-allocated `Vec<Value>` payload, so
//! source batches cost one allocation per tuple, shedding spliced tuple
//! vectors and window panes re-grouped owning tuples. This module keeps a
//! faithful reimplementation of that **row path** and races it against
//! the live **batch path** ([`TupleBatch`] columns + drop bitmap) on the
//! two loops that dominate an overloaded node's tick:
//!
//! 1. **shedder hot loop** — build a source buffer, stamp Eq.-1 SIC,
//!    snapshot per-query states, run `selectTuplesToKeep`, and move the
//!    kept batches into the operator input (the pane append);
//! 2. **join/aggregate pipeline** — push two keyed streams through a
//!    tumbling window, equi-join the panes and average the join output.
//!
//! Reported numbers are mean ns per *arrived* tuple over the whole loop,
//! so the ratio is exactly the per-tuple mechanism overhead THEMIS's
//! shedding must keep negligible (§7.6 measures the same thing for the
//! policy itself), alongside the [`batch_allocs`] delta per iteration so
//! batch-construction regressions show up next to the throughput.
//! Results are rendered as a table/CSV and exported as
//! `results/BENCH_batching.json` so later PRs can track the trajectory.

use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;
use std::time::Instant;

use themis_core::prelude::*;
use themis_query::prelude::{keyed_measurement_schema, measurement_schema};

use crate::table::{f2, TextTable};

/// Sizing of one measured iteration.
#[derive(Debug, Clone, Copy)]
pub struct BatchingScale {
    /// Queries competing in the shedder loop.
    pub queries: usize,
    /// Buffered batches per query.
    pub batches_per_query: usize,
    /// Tuples per batch.
    pub tuples_per_batch: usize,
    /// Timed iterations per path.
    pub iters: usize,
}

impl BatchingScale {
    /// The default shape: 16 queries x 8 batches x 64 tuples under 3x
    /// overload, 60 timed iterations.
    pub fn default_scale() -> Self {
        BatchingScale {
            queries: 16,
            batches_per_query: 8,
            tuples_per_batch: 64,
            iters: 60,
        }
    }

    /// Reduced shape for smoke runs (`--quick`).
    pub fn quick() -> Self {
        BatchingScale {
            iters: 15,
            ..Self::default_scale()
        }
    }

    /// Tuples arriving per iteration.
    pub fn total_tuples(&self) -> usize {
        self.queries * self.batches_per_query * self.tuples_per_batch
    }
}

/// One measured comparison: the same loop on both representations.
#[derive(Debug, Clone)]
pub struct BatchingRow {
    /// Which hot loop was measured (`shedder` or `pipeline`).
    pub stage: &'static str,
    /// Mean ns per arrived tuple on the row (`Vec<Tuple>`) path.
    pub row_ns_per_tuple: f64,
    /// Mean ns per arrived tuple on the columnar batch path.
    pub batch_ns_per_tuple: f64,
    /// [`TupleBatch`] constructions per iteration on the row path
    /// (always 0 — the row path predates `TupleBatch`; kept so the JSON
    /// shape is symmetric).
    pub row_allocs_per_iter: u64,
    /// [`TupleBatch`] constructions per iteration on the batch path —
    /// the count the batch pool exists to push down.
    pub batch_allocs_per_iter: u64,
}

impl BatchingRow {
    /// How many times faster the batch path is.
    pub fn speedup(&self) -> f64 {
        if self.batch_ns_per_tuple <= 0.0 {
            f64::INFINITY
        } else {
            self.row_ns_per_tuple / self.batch_ns_per_tuple
        }
    }
}

/// Tiny deterministic value generator (the bench must not depend on the
/// workload RNG shapes).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_key(&mut self, n: i64) -> i64 {
        (self.next_f64() * n as f64) as i64
    }
}

// ---------------------------------------------------------------------
// Shedder hot loop
// ---------------------------------------------------------------------

/// One row-path iteration: the seed's representation. Source batches are
/// built as `Vec<Tuple>` (one `Vec<Value>` allocation per tuple), SIC is
/// stamped through each tuple, the snapshot/decision run, and kept
/// batches move tuple-by-tuple into a per-query pane.
pub fn shed_iteration_row(scale: &BatchingScale, seed: u64) -> f64 {
    let mut rng = Lcg(seed | 1);
    let sic = Sic(1.0 / scale.total_tuples() as f64);
    // Arrival: construct the buffer (per-tuple allocation).
    let mut buffer: Vec<(QueryId, Vec<Tuple>)> = Vec::new();
    for q in 0..scale.queries {
        for b in 0..scale.batches_per_query {
            let ts = Timestamp((q * scale.batches_per_query + b) as u64 * 100);
            let tuples: Vec<Tuple> = (0..scale.tuples_per_batch)
                .map(|_| Tuple::measurement(ts, Sic::ZERO, rng.next_f64() * 100.0))
                .collect();
            buffer.push((QueryId(q as u32), tuples));
        }
    }
    // Eq.-1 stamping: write every tuple's SIC through its row.
    for (_, tuples) in &mut buffer {
        for t in tuples.iter_mut() {
            t.sic = sic;
        }
    }
    // Snapshot per query.
    let mut states: Vec<QueryBufferState> = (0..scale.queries)
        .map(|q| QueryBufferState {
            query: QueryId(q as u32),
            base_sic: Sic::ZERO,
            batches: Vec::new(),
        })
        .collect();
    for (idx, (q, tuples)) in buffer.iter().enumerate() {
        let batch_sic: Sic = tuples.iter().map(|t| t.sic).sum();
        states[q.index()].batches.push(CandidateBatch {
            buffer_index: idx,
            sic: batch_sic,
            tuples: tuples.len(),
            created: tuples.first().map(|t| t.ts).unwrap_or(Timestamp::ZERO),
        });
    }
    // Decide under 3x overload.
    let mut shedder = BalanceSicShedder::new(seed);
    let decision = shedder.select_to_keep(scale.total_tuples() / 3, &states);
    let mut keep = decision.keep;
    keep.sort_unstable();
    // Apply: splice the kept tuples into per-query panes.
    let mut panes: Vec<Vec<Tuple>> = vec![Vec::new(); scale.queries];
    let mut keep_iter = keep.into_iter().peekable();
    for (idx, (q, tuples)) in buffer.into_iter().enumerate() {
        if keep_iter.peek() == Some(&idx) {
            keep_iter.next();
            panes[q.index()].extend(tuples);
        }
    }
    // Operator read: one pass over each pane's kept rows.
    let mut acc = 0.0;
    for pane in &panes {
        acc += pane.iter().map(|t| t.values[0].as_f64()).sum::<f64>();
    }
    acc
}

/// One batch-path iteration: identical workload and policy on the
/// columnar representation as the live system builds it — sources append
/// typed columns against their declared schema, stamping fills the SIC
/// column, shedding marks the decision bitmap and kept batches append as
/// contiguous column copies.
pub fn shed_iteration_batch(scale: &BatchingScale, seed: u64) -> f64 {
    let mut rng = Lcg(seed | 1);
    let schema = measurement_schema();
    let sic = Sic(1.0 / scale.total_tuples() as f64);
    let mut buffer: Vec<(QueryId, TupleBatch)> = Vec::new();
    for q in 0..scale.queries {
        for b in 0..scale.batches_per_query {
            let ts = Timestamp((q * scale.batches_per_query + b) as u64 * 100);
            let mut batch =
                TupleBatch::with_schema_capacity(schema.clone(), scale.tuples_per_batch);
            for _ in 0..scale.tuples_per_batch {
                batch.push_row(ts, Sic::ZERO, &[Value::F64(rng.next_f64() * 100.0)]);
            }
            buffer.push((QueryId(q as u32), batch));
        }
    }
    for (_, batch) in &mut buffer {
        batch.set_uniform_sic(sic);
    }
    let mut states: Vec<QueryBufferState> = (0..scale.queries)
        .map(|q| QueryBufferState {
            query: QueryId(q as u32),
            base_sic: Sic::ZERO,
            batches: Vec::new(),
        })
        .collect();
    for (idx, (q, batch)) in buffer.iter().enumerate() {
        states[q.index()].batches.push(CandidateBatch {
            buffer_index: idx,
            sic: batch.sic_total(),
            tuples: batch.len(),
            created: if batch.rows() > 0 {
                batch.row(0).ts
            } else {
                Timestamp::ZERO
            },
        });
    }
    let mut shedder = BalanceSicShedder::new(seed);
    let decision = shedder.select_to_keep(scale.total_tuples() / 3, &states);
    let shed = decision.shed_bitmap(buffer.len());
    let mut panes: Vec<TupleBatch> = vec![TupleBatch::new(); scale.queries];
    for (idx, (q, batch)) in buffer.into_iter().enumerate() {
        if !shed.is_dropped(idx) {
            panes[q.index()].append_batch(&batch);
        }
    }
    let mut acc = 0.0;
    for pane in &panes {
        acc += pane.column_f64(0).sum::<f64>();
    }
    acc
}

// ---------------------------------------------------------------------
// Join/aggregate pipeline
// ---------------------------------------------------------------------

const PIPELINE_WINDOWS: u64 = 8;
const PIPELINE_KEYS: i64 = 256;

fn pipeline_ts(i: usize, total: usize) -> Timestamp {
    // Spread the stream uniformly over the windows.
    Timestamp(((i as u64) * PIPELINE_WINDOWS * 1_000_000) / total.max(1) as u64)
}

/// One row-path pipeline iteration, mirroring the seed operators: build
/// two keyed streams as `Vec<Tuple>`, group them into tumbling panes of
/// owning tuples, hash-join each pane pair (stamping Eq.-3 output tuples
/// exactly as the old `WindowedOperator::drain` did), clone the emission
/// to the downstream operator (the seed runtime cloned per downstream
/// edge), re-window it there and average each pane.
pub fn pipeline_iteration_row(scale: &BatchingScale, seed: u64) -> f64 {
    let mut rng = Lcg(seed | 1);
    let total = scale.total_tuples() / 2;
    let sic = Sic(1.0 / total.max(1) as f64);
    let mk_stream = |rng: &mut Lcg| -> Vec<Tuple> {
        (0..total)
            .map(|i| {
                Tuple::new(
                    pipeline_ts(i, total),
                    sic,
                    vec![
                        Value::I64(rng.next_key(PIPELINE_KEYS)),
                        Value::F64(rng.next_f64() * 100.0),
                    ],
                )
            })
            .collect()
    };
    let left = mk_stream(&mut rng);
    let right = mk_stream(&mut rng);
    // Join op, tumbling 1 s window: group owning tuples per pane and port.
    let mut panes: BTreeMap<u64, (Vec<Tuple>, Vec<Tuple>)> = BTreeMap::new();
    for t in left {
        panes
            .entry(t.ts.as_micros() / 1_000_000)
            .or_default()
            .0
            .push(t);
    }
    for t in right {
        panes
            .entry(t.ts.as_micros() / 1_000_000)
            .or_default()
            .1
            .push(t);
    }
    let mut avg_panes: BTreeMap<u64, Vec<Tuple>> = BTreeMap::new();
    for (idx, (l, r)) in panes {
        let input_sic: Sic = l.iter().chain(r.iter()).map(|t| t.sic).sum();
        let at = Timestamp((idx + 1) * 1_000_000 - 1);
        // Hash equi-join on field 0, concatenating rows.
        let mut index: HashMap<i64, Vec<&Tuple>> = HashMap::new();
        for t in &r {
            index.entry(t.values[0].as_i64()).or_default().push(t);
        }
        let mut rows: Vec<Row> = Vec::new();
        for t in &l {
            if let Some(matches) = index.get(&t.values[0].as_i64()) {
                for m in matches {
                    let mut row = t.values.clone();
                    row.extend(m.values.iter().copied());
                    rows.push(row);
                }
            }
        }
        if rows.is_empty() {
            continue;
        }
        // Eq. 3: spread the pane's mass over the join output tuples.
        let share = Sic::derived_tuple(input_sic, rows.len());
        let emission: Vec<Tuple> = rows
            .into_iter()
            .map(|row| Tuple::new(at, share, row))
            .collect();
        // Downstream hand-off: the seed runtime cloned the emission per
        // downstream edge (one tuple-vector clone = one allocation per
        // tuple), then the AVG window re-grouped the clones.
        for t in emission.clone() {
            avg_panes
                .entry(t.ts.as_micros() / 1_000_000)
                .or_default()
                .push(t);
        }
    }
    let mut acc = 0.0;
    for (_, pane) in avg_panes {
        let sum: f64 = pane.iter().map(|t| t.values[3].as_f64()).sum();
        acc += sum / pane.len() as f64;
    }
    acc
}

/// One batch-path pipeline iteration: the same streams built as
/// schema-typed columnar batches (the live source representation) and
/// pushed through the *live* operator stack
/// ([`WindowedOperator`](themis_operators::op::WindowedOperator) join
/// feeding an AVG).
pub fn pipeline_iteration_batch(scale: &BatchingScale, seed: u64) -> f64 {
    use themis_operators::prelude::*;

    let mut rng = Lcg(seed | 1);
    let total = scale.total_tuples() / 2;
    let sic = Sic(1.0 / total.max(1) as f64);
    let schema = keyed_measurement_schema();
    let mk_stream = |rng: &mut Lcg| -> TupleBatch {
        let mut batch = TupleBatch::with_schema_capacity(schema.clone(), total);
        for i in 0..total {
            batch.push_row(
                pipeline_ts(i, total),
                sic,
                &[
                    Value::I64(rng.next_key(PIPELINE_KEYS)),
                    Value::F64(rng.next_f64() * 100.0),
                ],
            );
        }
        batch
    };
    let left = mk_stream(&mut rng);
    let right = mk_stream(&mut rng);
    let mut join = OperatorSpec::with_grace(
        WindowSpec::tumbling(TimeDelta::from_secs(1)),
        LogicSpec::Join {
            left_key: 0,
            right_key: 0,
        },
        TimeDelta::ZERO,
    )
    .build();
    let mut avg = OperatorSpec::with_grace(
        WindowSpec::tumbling(TimeDelta::from_secs(1)),
        LogicSpec::Avg { field: 3 },
        TimeDelta::ZERO,
    )
    .build();
    let end = Timestamp::from_secs(PIPELINE_WINDOWS + 1);
    join.feed(0, left, end);
    join.feed(1, right, end);
    let mut acc = 0.0;
    for e in join.tick(end) {
        // Downstream hand-off mirrors the live fragment runtime: a
        // columnar clone (three column memcpys, not one allocation per
        // tuple) feeds the AVG operator's window.
        for out in avg.push(0, e.batch().clone(), e.at) {
            acc += out.batch().row(0).f64(0);
        }
    }
    for out in avg.tick(Timestamp::from_secs(PIPELINE_WINDOWS + 10)) {
        acc += out.batch().row(0).f64(0);
    }
    acc
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Times `iteration` over `iters` runs (plus warm-up) and returns mean
/// ns per arrived tuple.
fn measure(scale: &BatchingScale, tuples: usize, mut iteration: impl FnMut(u64) -> f64) -> f64 {
    for s in 0..scale.iters.div_ceil(5).max(2) {
        black_box(iteration(s as u64));
    }
    let t0 = Instant::now();
    for s in 0..scale.iters {
        black_box(iteration(s as u64));
    }
    t0.elapsed().as_nanos() as f64 / (scale.iters.max(1) * tuples.max(1)) as f64
}

/// [`measure`] plus the [`batch_allocs`] delta per iteration (warm-up
/// included in the averaging window).
fn measure_with_allocs(
    scale: &BatchingScale,
    tuples: usize,
    iteration: impl FnMut(u64) -> f64,
) -> (f64, u64) {
    let a0 = batch_allocs();
    let ns = measure(scale, tuples, iteration);
    let iters = (scale.iters.div_ceil(5).max(2) + scale.iters) as u64;
    (ns, batch_allocs().saturating_sub(a0) / iters.max(1))
}

/// Runs both stages on both paths.
pub fn batching(scale: &BatchingScale) -> Vec<BatchingRow> {
    let total = scale.total_tuples();
    let (row_ns, row_allocs) = measure_with_allocs(scale, total, |s| shed_iteration_row(scale, s));
    let (batch_ns, batch_alloc_count) =
        measure_with_allocs(scale, total, |s| shed_iteration_batch(scale, s));
    let shed = BatchingRow {
        stage: "shedder",
        row_ns_per_tuple: row_ns,
        batch_ns_per_tuple: batch_ns,
        row_allocs_per_iter: row_allocs,
        batch_allocs_per_iter: batch_alloc_count,
    };
    let pipeline_tuples = (total / 2) * 2; // both ports arrive
    let (row_ns, row_allocs) =
        measure_with_allocs(scale, pipeline_tuples, |s| pipeline_iteration_row(scale, s));
    let (batch_ns, batch_alloc_count) = measure_with_allocs(scale, pipeline_tuples, |s| {
        pipeline_iteration_batch(scale, s)
    });
    let pipeline = BatchingRow {
        stage: "pipeline",
        row_ns_per_tuple: row_ns,
        batch_ns_per_tuple: batch_ns,
        row_allocs_per_iter: row_allocs,
        batch_allocs_per_iter: batch_alloc_count,
    };
    vec![shed, pipeline]
}

/// Renders the comparison.
pub fn render(rows: &[BatchingRow]) -> TextTable {
    let mut t = TextTable::new(
        "Columnar batches: row path vs batch path (ns/tuple)",
        &[
            "stage",
            "row-ns",
            "batch-ns",
            "speedup",
            "row-allocs",
            "batch-allocs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.stage.to_string(),
            f2(r.row_ns_per_tuple),
            f2(r.batch_ns_per_tuple),
            f2(r.speedup()),
            r.row_allocs_per_iter.to_string(),
            r.batch_allocs_per_iter.to_string(),
        ]);
    }
    t
}

/// Serialises the rows as the `BENCH_batching.json` artefact.
pub fn to_json(rows: &[BatchingRow]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {{ \"row_ns_per_tuple\": {:.2}, \"batch_ns_per_tuple\": {:.2}, \
             \"speedup\": {:.2}, \"row_allocs_per_iter\": {}, \
             \"batch_allocs_per_iter\": {} }}{}\n",
            r.stage,
            r.row_ns_per_tuple,
            r.batch_ns_per_tuple,
            r.speedup(),
            r.row_allocs_per_iter,
            r.batch_allocs_per_iter,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BatchingScale {
        BatchingScale {
            queries: 3,
            batches_per_query: 2,
            tuples_per_batch: 8,
            iters: 2,
        }
    }

    #[test]
    fn both_shed_paths_read_the_same_kept_mass() {
        // Same workload, same policy seed: both representations must keep
        // the same tuples, so the consumed value sums agree exactly.
        let s = tiny();
        assert_eq!(shed_iteration_row(&s, 7), shed_iteration_batch(&s, 7));
    }

    #[test]
    fn both_pipeline_paths_compute_the_same_aggregates() {
        let s = tiny();
        let row = pipeline_iteration_row(&s, 11);
        let batch = pipeline_iteration_batch(&s, 11);
        assert!(
            (row - batch).abs() < 1e-6 * row.abs().max(1.0),
            "row {row} vs batch {batch}"
        );
    }

    #[test]
    fn measurement_produces_rows() {
        let rows = batching(&tiny());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.row_ns_per_tuple > 0.0);
            assert!(r.batch_ns_per_tuple > 0.0);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"shedder\""));
        assert!(json.contains("\"pipeline\""));
        assert!(json.contains("\"batch_allocs_per_iter\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
