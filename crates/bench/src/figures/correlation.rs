//! §7.1 — SIC correlation with result correctness (Figures 6 and 7).
//!
//! For each query type and dataset, a single node runs an increasing
//! number of identical queries under *random* shedding (as in the paper),
//! and the same runs are repeated with unbounded capacity to obtain the
//! perfect results. The per-run mean SIC is plotted against the error
//! between degraded and perfect result series.

use std::collections::BTreeMap;

use themis_core::metrics::{kendall_top_k, mean_absolute_error, std_around};
use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::Scale;
use crate::table::{f, TextTable};

/// Query types of the correlation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationQuery {
    /// Figure 6a.
    Avg,
    /// Figure 6b.
    Count,
    /// Figure 6c.
    Max,
    /// Figure 7a (Kendall distance).
    Top5,
    /// Figure 7b (std of sampled covariance).
    Cov,
}

impl CorrelationQuery {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CorrelationQuery::Avg => "AVG",
            CorrelationQuery::Count => "COUNT",
            CorrelationQuery::Max => "MAX",
            CorrelationQuery::Top5 => "TOP-5",
            CorrelationQuery::Cov => "COV",
        }
    }

    fn template(&self) -> Template {
        match self {
            CorrelationQuery::Avg => Template::Avg,
            CorrelationQuery::Count => Template::Count,
            CorrelationQuery::Max => Template::Max,
            CorrelationQuery::Top5 => Template::Top5 { fragments: 1 },
            CorrelationQuery::Cov => Template::Cov { fragments: 1 },
        }
    }

    /// Per-query source demand at 40 t/s per source.
    fn capacity_for_two_queries(&self) -> u32 {
        match self {
            CorrelationQuery::Top5 => 2 * 20 * 40,
            CorrelationQuery::Cov => 2 * 2 * 40,
            _ => 2 * 40,
        }
    }
}

/// One measured point of the correlation figures.
#[derive(Debug, Clone)]
pub struct CorrelationPoint {
    /// Dataset series.
    pub dataset: &'static str,
    /// Number of co-located queries (the overload knob).
    pub queries: usize,
    /// Measured mean result SIC.
    pub sic: f64,
    /// Error metric (MAE, Kendall distance, or covariance std).
    pub error: f64,
}

fn build_scenario(
    q: CorrelationQuery,
    dataset: Dataset,
    count: usize,
    capacity: u32,
    scale: &Scale,
    seed: u64,
) -> Scenario {
    ScenarioBuilder::new(format!("fig67-{}-{}", q.name(), dataset.name()), seed)
        .nodes(1)
        .capacity_tps(capacity)
        .duration(scale.duration)
        .warmup(scale.warmup)
        .add_queries(q.template(), count, SourceProfile::steady(40, 4, dataset))
        .build()
        .expect("single-node placement always succeeds")
}

/// Result series keyed by emission timestamp; duplicate window emissions
/// keep the first.
fn series(report: &SimReport, q: QueryId) -> BTreeMap<u64, Vec<Row>> {
    let mut out = BTreeMap::new();
    if let Some(records) = report.results.get(&q) {
        for (ts, rows) in records {
            out.entry(ts.as_micros()).or_insert_with(|| rows.clone());
        }
    }
    out
}

fn error_between(
    q: CorrelationQuery,
    perfect: &SimReport,
    degraded: &SimReport,
    queries: &[QueryId],
) -> f64 {
    match q {
        CorrelationQuery::Avg | CorrelationQuery::Count | CorrelationQuery::Max => {
            let mut p = Vec::new();
            let mut d = Vec::new();
            for &qid in queries {
                let ps = series(perfect, qid);
                let ds = series(degraded, qid);
                for (ts, rows) in &ds {
                    if let Some(prows) = ps.get(ts) {
                        if let (Some(pv), Some(dv)) = (
                            prows.first().and_then(|r| r.first()),
                            rows.first().and_then(|r| r.first()),
                        ) {
                            p.push(pv.as_f64());
                            d.push(dv.as_f64());
                        }
                    }
                }
            }
            mean_absolute_error(&p, &d)
        }
        CorrelationQuery::Top5 => {
            let mut total = 0.0;
            let mut n = 0usize;
            for &qid in queries {
                let ps = series(perfect, qid);
                let ds = series(degraded, qid);
                for (ts, rows) in &ds {
                    if let Some(prows) = ps.get(ts) {
                        let pid: Vec<i64> = prows.iter().map(|r| r[0].as_i64()).collect();
                        let did: Vec<i64> = rows.iter().map(|r| r[0].as_i64()).collect();
                        total += kendall_top_k(&pid, &did);
                        n += 1;
                    }
                }
            }
            if n == 0 {
                1.0
            } else {
                total / n as f64
            }
        }
        CorrelationQuery::Cov => {
            // Std of degraded covariance samples around the perfect mean.
            let mut perfect_vals = Vec::new();
            let mut degraded_vals = Vec::new();
            for &qid in queries {
                for rows in series(perfect, qid).values() {
                    if let Some(v) = rows.first().and_then(|r| r.first()) {
                        perfect_vals.push(v.as_f64());
                    }
                }
                for rows in series(degraded, qid).values() {
                    if let Some(v) = rows.first().and_then(|r| r.first()) {
                        degraded_vals.push(v.as_f64());
                    }
                }
            }
            if perfect_vals.is_empty() {
                return 0.0;
            }
            let pm = perfect_vals.iter().sum::<f64>() / perfect_vals.len() as f64;
            std_around(&degraded_vals, pm)
        }
    }
}

/// Runs the correlation study for one query type over all five datasets.
pub fn correlation(q: CorrelationQuery, scale: &Scale, seed: u64) -> Vec<CorrelationPoint> {
    let counts = [2usize, 3, 4, 6, 10, 16];
    let capacity = q.capacity_for_two_queries();
    let mut cfg = SimConfig::with_policy(PolicyKind::Random);
    cfg.record_results = true;
    let mut points = Vec::new();
    for dataset in Dataset::ALL {
        for &count in &counts {
            let scn = build_scenario(q, dataset, count, capacity, scale, seed);
            let queries: Vec<QueryId> = scn.queries.iter().map(|x| x.id).collect();
            let degraded = run_scenario(scn, cfg.clone());
            let perfect_scn = build_scenario(q, dataset, count, 1_000_000, scale, seed);
            let perfect = run_scenario(perfect_scn, cfg.clone());
            let error = error_between(q, &perfect, &degraded, &queries);
            points.push(CorrelationPoint {
                dataset: dataset.name(),
                queries: count,
                sic: degraded.mean_sic(),
                error,
            });
        }
    }
    points
}

/// Renders the points as a figure table.
pub fn render(q: CorrelationQuery, points: &[CorrelationPoint]) -> TextTable {
    let metric = match q {
        CorrelationQuery::Top5 => "kendall",
        CorrelationQuery::Cov => "cov-std",
        _ => "mean-abs-err",
    };
    let mut t = TextTable::new(
        format!("{} SIC correlation ({metric} vs SIC)", q.name()),
        &["dataset", "queries", "sic", metric],
    );
    for p in points {
        t.row(vec![
            p.dataset.to_string(),
            p.queries.to_string(),
            f(p.sic),
            f(p.error),
        ]);
    }
    t
}
