//! Tables 1 and 2 of the paper, regenerated from the implementation (the
//! numbers are asserted against the templates, not hard-coded prose).

use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_workloads::prelude::*;

use crate::table::TextTable;

/// Table 1: the query workloads with their per-fragment shape.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(
        "Table 1: query workloads",
        &[
            "query",
            "workload",
            "fragments",
            "ops/fragment",
            "sources/fragment",
        ],
    );
    let mut src = IdGen::new();
    let rows: Vec<(Template, &str)> = vec![
        (Template::Avg, "aggregate"),
        (Template::Max, "aggregate"),
        (Template::Count, "aggregate"),
        (Template::AvgAll { fragments: 3 }, "complex"),
        (Template::Top5 { fragments: 2 }, "complex"),
        (Template::Cov { fragments: 2 }, "complex"),
    ];
    for (tmpl, workload) in rows {
        let q = tmpl.build(QueryId(0), &mut src);
        // Regenerated, not transcribed: count operators from the spec.
        let ops = q.fragments[0].n_operators();
        debug_assert_eq!(ops, tmpl.ops_per_fragment());
        t.row(vec![
            tmpl.name().to_string(),
            workload.to_string(),
            q.n_fragments().to_string(),
            ops.to_string(),
            tmpl.sources_per_fragment().to_string(),
        ]);
    }
    t
}

/// Table 2: the two test-bed profiles driving the simulator.
pub fn table2() -> TextTable {
    let mut t = TextTable::new(
        "Table 2: test-bed set-ups (simulated)",
        &[
            "testbed",
            "processing-nodes",
            "link-latency",
            "src-rate",
            "batches/s",
            "batch-size",
        ],
    );
    for tb in [LOCAL, EMULAB, WAN] {
        let p = tb.source_profile(Dataset::Uniform);
        t.row(vec![
            tb.name.to_string(),
            tb.processing_nodes.to_string(),
            format!("{}", tb.link_latency),
            format!("{} t/s", tb.source_rate),
            tb.batches_per_sec.to_string(),
            p.batch_size().to_string(),
        ]);
    }
    t
}
