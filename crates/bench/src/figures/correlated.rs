//! Correlated vs independent bursts: one hidden load process modulating
//! every source at once, against a control where the same pattern runs
//! per-source with independent seeds.
//!
//! Load shedders are easiest on workloads whose bursts de-phase: with
//! independent flash crowds, at any instant only a few sources spike and
//! a node's aggregate barely moves. A *correlated* burst
//! ([`ScenarioBuilder::with_correlated_load`]) removes that averaging —
//! every source triples at the same moment, so the shedder faces the
//! full swing. Both runs here have **identical declared mean demand**
//! (the shared and per-source patterns are the same process), so any
//! fairness difference is attributable to the correlation alone.
//!
//! Gates asserted when the experiment runs by name (and by any CI
//! smoke): under `balance-sic` the correlated run's Jain index must stay
//! within [`CORRELATED_JAIN_SLACK`] of the independent-burst control,
//! and the correlated run must actually shed — a declared-fairness
//! property under simultaneous overload, not just steady state. The
//! outcome is written to `results/BENCH_correlated.json`.

use std::time::Duration;

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Allowed Jain drop of the correlated run below the independent control.
pub const CORRELATED_JAIN_SLACK: f64 = 0.05;

/// One arm of the comparison.
#[derive(Debug)]
pub struct CorrelatedArm {
    /// Arm name (`correlated` or `independent`).
    pub name: &'static str,
    /// Jain's index over per-query mean SIC.
    pub jain: f64,
    /// Mean per-query SIC.
    pub mean_sic: f64,
    /// Fraction of arrived tuples shed.
    pub shed_fraction: f64,
    /// Tuples that arrived across all nodes.
    pub arrived_tuples: u64,
}

/// Outcome of the correlated-burst experiment.
#[derive(Debug)]
pub struct CorrelatedOutcome {
    /// Nodes in each engine run.
    pub nodes: usize,
    /// Queries in each run.
    pub queries: usize,
    /// The two arms: `correlated` first, `independent` second.
    pub arms: Vec<CorrelatedArm>,
    /// Declared mean demand per node (identical across arms).
    pub demand_per_node_tps: f64,
    /// Enforced node capacity.
    pub capacity_tps: u32,
}

impl CorrelatedOutcome {
    /// The named arm.
    pub fn arm(&self, name: &str) -> &CorrelatedArm {
        self.arms.iter().find(|a| a.name == name).expect("arm")
    }

    /// The fairness gate: correlated Jain within
    /// [`CORRELATED_JAIN_SLACK`] of the independent control, with real
    /// shedding in the correlated arm.
    pub fn fair_under_correlation(&self) -> bool {
        let corr = self.arm("correlated");
        corr.jain >= self.arm("independent").jain - CORRELATED_JAIN_SLACK
            && corr.shed_fraction > 0.0
    }
}

/// Runs both arms: 16 AVG queries over 4 nodes, flash-crowd pattern
/// (1 s spike at 3x per 4 s epoch), shared in the `correlated` arm and
/// per-source in the `independent` control. Capacity sits at the mean
/// demand, so the correlated spikes swing well past it.
pub fn correlated(secs: u64, seed: u64) -> CorrelatedOutcome {
    let nodes = 4usize;
    let queries = 16usize;
    let rate = 200u32;
    let burst = RatePattern::FlashCrowd {
        every: TimeDelta::from_secs(4),
        width: TimeDelta::from_secs(1),
        magnitude: 3.0,
    };
    let base = SourceProfile::steady(rate, 10, Dataset::Uniform);
    // Mean demand/node: 4 queries x 200 t/s x 1.5 (burst mean) = 1200.
    let capacity = (queries / nodes) as f64 * rate as f64 * burst.mean_factor();
    let stw = TimeDelta::from_secs(2);
    let warmup = TimeDelta::from_micros(stw.as_micros() + 500_000);
    let secs = secs.max(2);

    let run = |correlated: bool| -> CorrelatedArm {
        let mut b = ScenarioBuilder::new(
            if correlated {
                "correlated"
            } else {
                "independent"
            },
            seed,
        )
        .nodes(nodes)
        .capacity_tps(capacity as u32)
        .stw_window(stw)
        .warmup(warmup);
        if correlated {
            // One hidden process, one seed: every source spikes together.
            b = b.with_correlated_load(burst, seed ^ 0xC0FFEE);
            b = b.add_queries(Template::Avg, queries, base);
        } else {
            // The same pattern as each source's own: per-driver seeds, so
            // the spikes land at independent offsets.
            b = b.add_queries(Template::Avg, queries, base.with_pattern(burst));
        }
        let scenario = b.build().expect("placement");
        debug_assert!(
            (scenario.total_demand_tps() - nodes as f64 * capacity).abs() < 1e-6,
            "both arms declare identical demand"
        );
        let mut engine = Engine::start(
            &scenario,
            EngineConfig {
                enforce_capacity: true,
                record_series: true,
                ..Default::default()
            },
        );
        engine.run_for(Duration::from_micros(warmup.as_micros()));
        engine.run_for(Duration::from_secs(secs));
        let report = engine.finish();
        let sics: Vec<f64> = report.per_query_sic.iter().map(|&(_, s)| s).collect();
        CorrelatedArm {
            name: if correlated {
                "correlated"
            } else {
                "independent"
            },
            jain: jain_index(&sics),
            mean_sic: if sics.is_empty() {
                0.0
            } else {
                sics.iter().sum::<f64>() / sics.len() as f64
            },
            shed_fraction: report.shed_fraction(),
            arrived_tuples: report.nodes.iter().map(|n| n.arrived_tuples).sum(),
        }
    };

    CorrelatedOutcome {
        nodes,
        queries,
        arms: vec![run(true), run(false)],
        demand_per_node_tps: capacity,
        capacity_tps: capacity as u32,
    }
}

/// Renders the two arms side by side.
pub fn render(out: &CorrelatedOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Correlated bursts: {} queries / {} nodes, capacity {} t/s at the declared mean",
            out.queries, out.nodes, out.capacity_tps
        ),
        &["arm", "jain", "mean-sic", "shed", "arrived-tuples"],
    );
    for a in &out.arms {
        t.row(vec![
            a.name.to_string(),
            f(a.jain),
            f(a.mean_sic),
            format!("{:.1}%", a.shed_fraction * 100.0),
            a.arrived_tuples.to_string(),
        ]);
    }
    t
}

/// Serialises the outcome for `results/BENCH_correlated.json`.
pub fn to_json(out: &CorrelatedOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"nodes\": {},\n  \"queries\": {},\n  \"capacity_tps\": {},\n  \"jain_slack\": {CORRELATED_JAIN_SLACK},\n",
        out.nodes, out.queries, out.capacity_tps
    ));
    s.push_str(&format!(
        "  \"fair_under_correlation\": {},\n  \"arms\": [\n",
        out.fair_under_correlation()
    ));
    for (i, a) in out.arms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"jain\": {:.6}, \"mean_sic\": {:.6}, \"shed_fraction\": {:.6}, \"arrived_tuples\": {}}}{}\n",
            a.name,
            a.jain,
            a.mean_sic,
            a.shed_fraction,
            a.arrived_tuples,
            if i + 1 < out.arms.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
