//! Kill-mid-overload recovery: a shard dies under load, restarts, and
//! restores its state from checkpoint + WAL tail.
//!
//! The durability layer (themis-core's `wal` module plus the engine's
//! checkpoint/restore path) follows the AF-Stream observation that
//! approximate stream state only needs *divergence-bounded* fault
//! tolerance: deliberately-shed tuples never need recovery, so a
//! checkpoint of the SIC tables and open window panes plus a replayed
//! SIC-delta tail restores fairness state to within the configured
//! divergence bound.
//!
//! This experiment runs the same overloaded balance-sic scenario twice
//! with the same seed: a **control** arm that runs uninterrupted, and a
//! **faulted** arm whose [`FaultPlan`] kills one shard mid-overload
//! (~45% into the run) and restarts it (~55% in) with a restore from the
//! durable log. Both arms record per-query SIC series; the gate compares
//! the tail window (the last 20% of the run, well after recovery):
//!
//! * mean absolute per-query SIC error between the arms must stay within
//!   [`SIC_ERROR_BOUND`];
//! * the Jain fairness difference must stay within [`JAIN_DIFF_BOUND`];
//! * the killed shard must have left a readable durable log (inspected
//!   post-run with `wal::restore_shard` and recorded in the JSON);
//! * neither arm may report an [`EngineError`], and the faulted arm must
//!   actually have shed tuples (otherwise the crash hit an idle system).
//!
//! The verdict and measured values go to `results/BENCH_recovery.json`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use themis_core::prelude::*;
use themis_core::wal;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Allowed mean absolute per-query SIC error between the faulted arm and
/// the uninterrupted control, over the post-recovery window.
pub const SIC_ERROR_BOUND: f64 = 0.25;

/// Allowed |Jain(faulted) - Jain(control)| over the post-recovery window.
pub const JAIN_DIFF_BOUND: f64 = 0.12;

/// One arm of the experiment (control or faulted).
#[derive(Debug, Clone)]
pub struct RecoveryArm {
    /// Arm name (`control`, `faulted`).
    pub name: &'static str,
    /// Jain's index over the per-query window means.
    pub jain: f64,
    /// Mean per-query SIC over the window.
    pub mean_sic: f64,
    /// Fraction of arrived tuples shed over the whole run.
    pub shed_fraction: f64,
    /// Shard-thread failures the engine reported (must be 0; the injected
    /// crash is a controlled state drop, not a thread loss).
    pub engine_errors: usize,
}

/// Outcome of the recovery experiment.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Nodes in the engine.
    pub nodes: usize,
    /// Shard threads used.
    pub shards: usize,
    /// Queries attached (2 per node).
    pub queries: usize,
    /// The shard the fault plan killed.
    pub killed_shard: usize,
    /// Kill time (seconds after warm-up ends).
    pub kill_s: f64,
    /// Restart/restore time (seconds after warm-up ends).
    pub restart_s: f64,
    /// Post-recovery measurement window (seconds after warm-up ends).
    pub measure_from_s: f64,
    /// End of the measurement window.
    pub measure_to_s: f64,
    /// The two arms, `control` first.
    pub arms: Vec<RecoveryArm>,
    /// Mean absolute per-query SIC difference between the arms over the
    /// measurement window.
    pub mean_abs_error: f64,
    /// Node snapshots readable from the killed shard's durable log after
    /// the run (latest checkpoint).
    pub checkpoint_snapshots: usize,
    /// SIC deltas readable from the killed shard's WAL tail after the run.
    pub wal_deltas: usize,
    /// Whether the tail ended in a torn (incomplete) record — tolerated,
    /// recorded for the artifact trail.
    pub torn_tail: bool,
}

impl RecoveryOutcome {
    /// The named arm (the run always produces both).
    pub fn arm(&self, name: &str) -> &RecoveryArm {
        self.arms
            .iter()
            .find(|a| a.name == name)
            .expect("arm present")
    }

    /// |Jain(faulted) - Jain(control)| over the measurement window.
    pub fn jain_diff(&self) -> f64 {
        (self.arm("faulted").jain - self.arm("control").jain).abs()
    }

    /// The recovery gate: post-recovery SIC error and Jain difference
    /// within bounds, a readable durable log, genuine overload, and no
    /// shard-thread failures in either arm.
    pub fn recovered(&self) -> bool {
        self.mean_abs_error <= SIC_ERROR_BOUND
            && self.jain_diff() <= JAIN_DIFF_BOUND
            && (self.checkpoint_snapshots > 0 || self.wal_deltas > 0)
            && self.arm("faulted").shed_fraction > 0.0
            && self.arms.iter().all(|a| a.engine_errors == 0)
    }
}

/// Mean per-query SIC over the series samples inside `[from, to)`, keyed
/// by query id; queries without samples in the window are skipped.
fn window_means(
    series: &HashMap<QueryId, Vec<(Timestamp, f64)>>,
    from: Timestamp,
    to: Timestamp,
) -> HashMap<QueryId, f64> {
    series
        .iter()
        .filter_map(|(&q, samples)| {
            let vals: Vec<f64> = samples
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, v)| v)
                .collect();
            (!vals.is_empty()).then(|| (q, vals.iter().sum::<f64>() / vals.len() as f64))
        })
        .collect()
}

fn mean_of(values: impl Iterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = values.collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// One arm's run: the overloaded scenario under balance-sic with
/// durability into `dir`, optionally with the fault plan. Returns the
/// per-query window means over the last 20% of the run plus the arm
/// summary.
fn run_arm(
    name: &'static str,
    scenario: &Scenario,
    dir: &std::path::Path,
    secs: u64,
    fault: Option<FaultPlan>,
) -> (RecoveryArm, HashMap<QueryId, f64>, f64, f64) {
    let total = Duration::from_secs(secs);
    let warmup = Duration::from_micros(scenario.warmup.as_micros());
    let cfg = EngineConfig {
        policy: PolicyKind::BalanceSic.into(),
        enforce_capacity: true,
        record_series: true,
        shards: Some(4),
        checkpoint_every: Some(Duration::from_millis(250)),
        durability_dir: Some(dir.to_path_buf()),
        sic_divergence_bound: 1.0,
        fault_plan: fault,
        ..Default::default()
    };
    let mut engine = Engine::start(scenario, cfg);
    engine.run_for(warmup);
    let t0 = engine.now();
    engine.run_for(total.mul_f64(0.8));
    let measure_from = engine.now();
    engine.run_for(total.mul_f64(0.2));
    let measure_to = engine.now();
    let report = engine.finish();
    let means = window_means(&report.sic_series, measure_from, measure_to);
    let arm = RecoveryArm {
        name,
        jain: jain_index(&means.values().copied().collect::<Vec<f64>>()),
        mean_sic: mean_of(means.values().copied()),
        shed_fraction: report.shed_fraction(),
        engine_errors: report.errors.len(),
    };
    let from_s = (measure_from.as_secs_f64() - t0.as_secs_f64()).max(0.0);
    let to_s = (measure_to.as_secs_f64() - t0.as_secs_f64()).max(0.0);
    (arm, means, from_s, to_s)
}

/// Runs the recovery experiment: 16 AVG queries on 8 nodes (4 shards),
/// every node at 1.5x its declared capacity under balance-sic, durable
/// checkpoints every 250 ms. The faulted arm kills shard 0 at 45% of the
/// run and restores it at 55%; the control arm runs uninterrupted with
/// the same seed. `secs` sizes the post-warm-up run length.
pub fn recovery(secs: u64, seed: u64) -> RecoveryOutcome {
    let secs = secs.max(4);
    let nodes = 8usize;
    let queries = 16usize;
    let killed_shard = 0usize;
    let stw = TimeDelta::from_millis(1500);
    // 2 queries x 300 t/s per node against a declared 400 t/s capacity:
    // 1.5x overload. 20 batches/s keeps single batches (15 tuples) well
    // below the per-interval capacity, so batch-granular shedding still
    // admits load and results keep flowing.
    let scenario = ScenarioBuilder::new("recovery", seed)
        .nodes(nodes)
        .capacity_tps(400)
        .stw_window(stw)
        .warmup(TimeDelta::from_micros(stw.as_micros() + 500_000))
        .add_queries(
            Template::Avg,
            queries,
            SourceProfile::steady(300, 20, Dataset::Uniform),
        )
        .build()
        .expect("placement");

    let root = std::env::temp_dir().join(format!("themis-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control_dir: PathBuf = root.join("control");
    let faulted_dir: PathBuf = root.join("faulted");

    let warmup = Duration::from_micros(scenario.warmup.as_micros());
    let total = Duration::from_secs(secs);
    let kill_after = warmup + total.mul_f64(0.45);
    let restart_after = warmup + total.mul_f64(0.55);

    let (control, control_means, _, _) = run_arm("control", &scenario, &control_dir, secs, None);
    let (faulted, faulted_means, from_s, to_s) = run_arm(
        "faulted",
        &scenario,
        &faulted_dir,
        secs,
        Some(FaultPlan {
            shard: killed_shard,
            kill_after,
            restart_after,
        }),
    );

    // Per-query error between the arms over the measurement window, for
    // every query either arm sampled (a query missing from one arm counts
    // its full SIC as error).
    let ids: std::collections::BTreeSet<QueryId> = control_means
        .keys()
        .chain(faulted_means.keys())
        .copied()
        .collect();
    let mean_abs_error = mean_of(ids.iter().map(|q| {
        (control_means.get(q).copied().unwrap_or(0.0)
            - faulted_means.get(q).copied().unwrap_or(0.0))
        .abs()
    }));

    // Post-hoc artifact inspection: the killed shard's durable log must
    // still be readable after the run.
    let (checkpoint_snapshots, wal_deltas, torn_tail) =
        match wal::restore_shard(&faulted_dir, killed_shard) {
            Ok(Some(restore)) => (
                restore.snapshots.len(),
                restore.deltas.len(),
                restore.torn_tail,
            ),
            Ok(None) => (0, 0, false),
            Err(e) => {
                eprintln!("(recovery: unreadable durable log: {e})");
                (0, 0, false)
            }
        };
    let _ = std::fs::remove_dir_all(&root);

    RecoveryOutcome {
        nodes,
        shards: 4,
        queries,
        killed_shard,
        kill_s: total.mul_f64(0.45).as_secs_f64(),
        restart_s: total.mul_f64(0.55).as_secs_f64(),
        measure_from_s: from_s,
        measure_to_s: to_s,
        arms: vec![control, faulted],
        mean_abs_error,
        checkpoint_snapshots,
        wal_deltas,
        torn_tail,
    }
}

/// Renders the recovery arms.
pub fn render(out: &RecoveryOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Kill-mid-overload recovery: shard {} of {} killed at {:.1}s, restored at {:.1}s \
             ({} queries on {} nodes; window {:.1}s-{:.1}s)",
            out.killed_shard,
            out.shards,
            out.kill_s,
            out.restart_s,
            out.queries,
            out.nodes,
            out.measure_from_s,
            out.measure_to_s
        ),
        &["arm", "jain", "mean-sic", "shed-%", "engine-errors"],
    );
    for a in &out.arms {
        t.row(vec![
            a.name.to_string(),
            f(a.jain),
            f(a.mean_sic),
            format!("{:.1}", a.shed_fraction * 100.0),
            a.engine_errors.to_string(),
        ]);
    }
    t.row(vec![
        "error".to_string(),
        f(out.jain_diff()),
        f(out.mean_abs_error),
        String::new(),
        String::new(),
    ]);
    t
}

/// Serialises the outcome for `results/BENCH_recovery.json`.
pub fn to_json(out: &RecoveryOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"nodes\": {},\n  \"shards\": {},\n  \"queries\": {},\n  \"killed_shard\": {},\n",
        out.nodes, out.shards, out.queries, out.killed_shard
    ));
    s.push_str(&format!(
        "  \"kill_s\": {:.2},\n  \"restart_s\": {:.2},\n  \"measure_from_s\": {:.2},\n  \"measure_to_s\": {:.2},\n",
        out.kill_s, out.restart_s, out.measure_from_s, out.measure_to_s
    ));
    s.push_str(&format!(
        "  \"sic_error_bound\": {SIC_ERROR_BOUND},\n  \"jain_diff_bound\": {JAIN_DIFF_BOUND},\n"
    ));
    s.push_str(&format!(
        "  \"mean_abs_error\": {:.6},\n  \"jain_diff\": {:.6},\n",
        out.mean_abs_error,
        out.jain_diff()
    ));
    s.push_str(&format!(
        "  \"checkpoint_snapshots\": {},\n  \"wal_deltas\": {},\n  \"torn_tail\": {},\n",
        out.checkpoint_snapshots, out.wal_deltas, out.torn_tail
    ));
    s.push_str(&format!(
        "  \"recovered\": {},\n  \"arms\": [\n",
        out.recovered()
    ));
    for (i, a) in out.arms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"jain\": {:.6}, \"mean_sic\": {:.6}, \"shed_fraction\": {:.6}, \"engine_errors\": {}}}{}\n",
            a.name,
            a.jain,
            a.mean_sic,
            a.shed_fraction,
            a.engine_errors,
            if i + 1 < out.arms.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
