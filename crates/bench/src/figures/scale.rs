//! Engine scale: 1000+-node scenarios on a bounded shard pool.
//!
//! The seed engine burned one OS thread per FSPS node, capping experiments
//! at a few dozen nodes; the sharded engine multiplexes every node onto a
//! fixed pool, so the whole process runs on `shards + 3` threads (pool +
//! source pump + coordinator + a sampler here). This experiment runs an
//! N-node federation wall-clock, samples the process's peak thread count
//! from `/proc/self/status`, and reports it next to the shed/tick
//! counters — CI runs it at `--nodes=1024` as a smoke against the
//! bounded-thread property regressing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Outcome of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Nodes in the scenario.
    pub nodes: usize,
    /// Shard threads used.
    pub shards: usize,
    /// Peak OS threads observed in the process (`None` off Linux);
    /// includes the sampler thread itself.
    pub peak_threads: Option<usize>,
    /// The bound the sharded engine must hold: pool + pump + coordinator
    /// + sampler.
    pub thread_budget: usize,
    /// Wall time of the run in seconds.
    pub wall_secs: f64,
    /// Tuples arriving across all nodes.
    pub arrived: u64,
    /// Fraction of arrived tuples shed.
    pub shed: f64,
    /// Detector ticks fired across all nodes.
    pub ticks: u64,
    /// Ticks that slipped at least one full interval.
    pub late_ticks: u64,
    /// Result emissions across all queries.
    pub results: usize,
}

impl ScaleRow {
    /// True when the peak thread count stayed within the budget (always
    /// true where `/proc` is unavailable and no sample was taken).
    pub fn within_budget(&self) -> bool {
        self.peak_threads
            .map(|p| p <= self.thread_budget)
            .unwrap_or(true)
    }
}

/// Reads the current thread count of this process from `/proc/self/status`
/// (Linux only).
pub fn current_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Runs an `n_nodes`-node federation for `secs` wall seconds on a pool of
/// `shards` threads (`None`: available parallelism), sampling the peak
/// process thread count throughout.
pub fn scale(n_nodes: usize, shards: Option<usize>, secs: u64, seed: u64) -> ScaleRow {
    let scenario = ScenarioBuilder::new("scale", seed)
        .nodes(n_nodes)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(secs.max(1) * 1000))
        .warmup(TimeDelta::from_millis(500))
        .stw_window(TimeDelta::from_secs(1))
        .add_queries(
            Template::Avg,
            n_nodes,
            SourceProfile::steady(10, 2, Dataset::Uniform),
        )
        .build()
        .expect("placement");

    let stop = Arc::new(AtomicBool::new(false));
    let sampler_stop = stop.clone();
    let sampler = std::thread::spawn(move || {
        let mut peak = current_threads();
        while !sampler_stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
            if let (Some(p), Some(c)) = (peak, current_threads()) {
                peak = Some(p.max(c));
            }
        }
        peak
    });

    let t0 = Instant::now();
    let report = run_engine(
        &scenario,
        EngineConfig {
            policy: PolicyKind::BalanceSic.into(),
            shards,
            ..Default::default()
        },
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let peak_threads = sampler.join().expect("sampler panicked");

    ScaleRow {
        nodes: n_nodes,
        shards: report.shards,
        peak_threads,
        // Shard pool + source pump + coordinator (calling thread) + the
        // sampler itself.
        thread_budget: report.shards + 3,
        wall_secs,
        arrived: report.nodes.iter().map(|n| n.arrived_tuples).sum(),
        shed: report.shed_fraction(),
        ticks: report.nodes.iter().map(|n| n.ticks).sum(),
        late_ticks: report.nodes.iter().map(|n| n.late_ticks).sum(),
        results: report.result_counts.values().sum(),
    }
}

/// Renders the scale row.
pub fn render(row: &ScaleRow) -> TextTable {
    let mut t = TextTable::new(
        "Engine scale: nodes on a bounded shard pool",
        &[
            "nodes",
            "shards",
            "peak-threads",
            "thread-budget",
            "wall-s",
            "arrived",
            "shed",
            "ticks",
            "late-ticks",
            "results",
        ],
    );
    t.row(vec![
        row.nodes.to_string(),
        row.shards.to_string(),
        row.peak_threads
            .map(|p| p.to_string())
            .unwrap_or_else(|| "n/a".into()),
        row.thread_budget.to_string(),
        f(row.wall_secs),
        row.arrived.to_string(),
        f(row.shed),
        row.ticks.to_string(),
        row.late_ticks.to_string(),
        row.results.to_string(),
    ]);
    t
}
