//! Extension experiment: query churn. §5 notes that converged SIC values
//! depend on "often time-changing factors such as queries' arrivals and
//! departures"; this experiment shows BALANCE-SIC re-converging when a
//! cohort of queries joins mid-run and again when it leaves.
//!
//! This is the *simulator* (model-time) churn run; the wall-clock engine
//! analogue at 512+ nodes is [`crate::figures::churn`].

use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::Scale;
use crate::table::{f, TextTable};

/// One sampled instant of the churn run.
#[derive(Debug, Clone)]
pub struct DynamicsPoint {
    /// Sample time (seconds).
    pub t_secs: f64,
    /// Mean SIC of the always-on cohort.
    pub resident_mean: f64,
    /// Mean SIC of the arriving/departing cohort (0 while inactive).
    pub churn_mean: f64,
    /// Jain's index across all *active* queries.
    pub jain_active: f64,
}

/// Runs the churn scenario: `n_resident` queries run throughout; an equal
/// cohort arrives at 1/3 of the run and departs at 2/3.
pub fn dynamics(scale: &Scale, seed: u64) -> (Vec<DynamicsPoint>, Timestamp, Timestamp) {
    let n_resident = scale.n(12);
    let total = scale.warmup + scale.duration;
    let arrive = TimeDelta::from_micros(total.as_micros() / 3);
    let depart = TimeDelta::from_micros(2 * total.as_micros() / 3);
    let profile = SourceProfile::steady(scale.tuples_per_sec.max(20), 4, Dataset::Uniform);
    // Capacity sized so residents alone are at ~1.5x overload and the
    // arrival pushes the system to ~3x.
    let demand_resident = n_resident as f64 * 4.0 * profile.tuples_per_sec as f64;
    let capacity = (demand_resident / 2.0 / 1.5) as u32;
    let scenario = ScenarioBuilder::new("dynamics", seed)
        .nodes(2)
        .capacity_tps(capacity)
        .duration(scale.duration)
        .warmup(scale.warmup)
        .add_queries(Template::Cov { fragments: 2 }, n_resident, profile)
        .add_queries_with_lifetime(
            Template::Cov { fragments: 2 },
            n_resident,
            profile,
            arrive,
            Some(depart),
        )
        .build()
        .expect("placement");

    let resident: Vec<QueryId> = (0..n_resident as u32).map(QueryId).collect();
    let churn: Vec<QueryId> = (n_resident as u32..2 * n_resident as u32)
        .map(QueryId)
        .collect();

    let cfg = SimConfig {
        record_series: true,
        ..Default::default()
    };
    let lifetimes = scenario.lifetimes.clone();
    let report = run_scenario(scenario, cfg);

    // Re-shape the per-query series into cohort means per sample instant.
    let sample_times: Vec<Timestamp> = report
        .sic_series
        .get(&resident[0])
        .map(|s| s.iter().map(|&(t, _)| t).collect())
        .unwrap_or_default();
    let mut points = Vec::new();
    for (i, &t) in sample_times.iter().enumerate() {
        let mean_of = |ids: &[QueryId]| -> f64 {
            let vals: Vec<f64> = ids
                .iter()
                .filter_map(|q| {
                    report
                        .sic_series
                        .get(q)
                        .and_then(|s| s.get(i))
                        .map(|&(_, v)| v)
                })
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let active: Vec<f64> = resident
            .iter()
            .map(|q| (q, true))
            .chain(churn.iter().map(|q| {
                let (s, e) = lifetimes[q];
                (q, t >= s && e.map(|e| t < e).unwrap_or(true))
            }))
            .filter(|&(_, a)| a)
            .filter_map(|(q, _)| {
                report
                    .sic_series
                    .get(q)
                    .and_then(|s| s.get(i))
                    .map(|&(_, v)| v)
            })
            .collect();
        points.push(DynamicsPoint {
            t_secs: t.as_secs_f64(),
            resident_mean: mean_of(&resident),
            churn_mean: mean_of(&churn),
            jain_active: jain_index(&active),
        });
    }
    (points, Timestamp::ZERO + arrive, Timestamp::ZERO + depart)
}

/// Renders the churn time series.
pub fn render(points: &[DynamicsPoint], arrive: Timestamp, depart: Timestamp) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Extension: query churn (cohort arrives {:.0}s, departs {:.0}s)",
            arrive.as_secs_f64(),
            depart.as_secs_f64()
        ),
        &["t", "resident-mean-sic", "churn-mean-sic", "jain(active)"],
    );
    for p in points {
        t.row(vec![
            format!("{:.1}s", p.t_secs),
            f(p.resident_mean),
            f(p.churn_mean),
            f(p.jain_active),
        ]);
    }
    t
}
