//! End-to-end source scale: constant factors at 10⁵ sources.
//!
//! `scale` (the sibling experiment) proves the sharded engine holds its
//! thread budget as *nodes* grow; this experiment measures what each
//! arriving tuple actually *costs* once the source count gets large. It
//! drives `--sources=100000` independent AVG queries (one steady source
//! each) through the full engine — pump, shard ingest, shedder, window
//! panes, aggregate kernels, coordinator — and reports the cost per
//! arrived tuple. The aggregate offered load is capped
//! (`AGG_TPS_CAP`) so the scaled variable is the source *count*: at
//! 10⁵ sources every source streams single-tuple batches, putting the
//! per-source bookkeeping (pump slots, dictionary columns, pool
//! recycling, per-node detector state) on the measured path rather than
//! raw throughput saturation. Reported:
//!
//! * **wall ns/tuple** — wall time of the run plus the shutdown drain
//!   over arrived tuples, i.e. the inverse of end-to-end throughput
//!   (query installation is one-time work, reported separately as
//!   `setup_secs`);
//! * **CPU ns/tuple** — process CPU time (`utime + stime` from
//!   `/proc/self/stat`) over arrived tuples: the constant factor the
//!   dictionary columns, group kernel and batch pool exist to shrink;
//! * **peak RSS** — `VmHWM` from `/proc/self/status`, against a budget
//!   linear in the source count;
//! * **pool traffic** — reuse/fresh/recycle counters from the engine's
//!   [`BatchPool`] plus the process-wide batch-allocation delta.
//!
//! `--profile` adds a 25 ms sampling profiler over
//! `/proc/self/task/*/stat` that attributes cumulative CPU and runnable
//! samples per engine thread (the shard pool and source pump are named).
//! CI runs a reduced `--sources=10000` smoke that exits non-zero when
//! the CPU-per-tuple or RSS budget is breached; the row is exported as
//! `results/BENCH_scale.json` so the trajectory is tracked per PR.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, f2, TextTable};

/// Sources hosted per node: each node runs ~64 single-source AVG
/// fragments, so 10⁵ sources land on ~1.6k nodes multiplexed over the
/// shard pool.
const SOURCES_PER_NODE: usize = 64;

/// Aggregate offered load cap in tuples/second. Per-source rate is
/// `clamp(cap / sources, 1, 10)`: at 10⁴ sources every source streams
/// 10 t/s, at 10⁵ every source streams 1 t/s in single-tuple batches.
/// Without the cap the experiment saturates the host and measures queue
/// backlog (unbounded channels absorbing an offered load the shard pool
/// cannot drain) instead of per-source constant factors — the source
/// *count*, not the aggregate rate, is the scaled variable here.
const AGG_TPS_CAP: u64 = 100_000;

/// CPU budget per arrived tuple. The full pipeline (pump batch build,
/// shard routing, buffer admission, Eq.-1 stamping, window panes, kernel
/// aggregation, result routing) costs ~20 µs per *batch* on CI-class
/// hardware, so the per-tuple cost depends on batch size: ~4 µs at 10⁴
/// sources (5-tuple batches), ~21 µs at 10⁵ (single-tuple batches). On
/// a host too small to drain 10⁵ single-tuple batches per second the
/// run saturates and the ratio degenerates to 1/throughput (the pump
/// sheds skipped beats instead of backlogging), adding scheduling
/// noise on top; the ceiling leaves room for that regime. The 10⁴ CI
/// smoke — the regression gate that matters — trips it only on a ~10×
/// regression.
pub const CPU_NS_PER_TUPLE_CEILING: f64 = 45_000.0;

/// Fixed part of the RSS budget (binary, channels, shard pool).
pub const RSS_BASE_KB: u64 = 256 * 1024;

/// Per-source part of the RSS budget: driver + fragment runtime +
/// detector state + in-flight batches must stay under this.
pub const RSS_PER_SOURCE_KB: u64 = 24;

/// Per-thread CPU attribution from the `--profile` sampler.
#[derive(Debug, Clone)]
pub struct ProfileLine {
    /// Thread name (`shard-N`, `source-pump`, or the process name for
    /// the coordinator/main thread).
    pub name: String,
    /// Cumulative CPU seconds (`utime + stime`) over threads with this
    /// name, as of the last sample.
    pub cpu_secs: f64,
    /// Samples in which at least one thread with this name was runnable.
    pub run_samples: u64,
    /// Total samples taken of threads with this name.
    pub samples: u64,
}

/// Outcome of one end-to-end scale run.
#[derive(Debug, Clone)]
pub struct ScaleE2eRow {
    /// Independent sources driven (= AVG queries; one source each).
    pub sources: usize,
    /// Nodes hosting the fragments.
    pub nodes: usize,
    /// Shard threads used.
    pub shards: usize,
    /// Aggregate offered load (sources × per-source t/s, capped by
    /// `AGG_TPS_CAP`).
    pub offered_tps: u64,
    /// Wall seconds spent in `Engine::start` (installing every query,
    /// wiring sources into the pump): one-time cost, excluded from the
    /// per-tuple numbers.
    pub setup_secs: f64,
    /// Wall seconds from the end of start-up through shutdown (the
    /// measured run plus the drain, so a backlogged engine shows up
    /// here).
    pub wall_secs: f64,
    /// Process CPU seconds consumed over the same span (0 off Linux).
    pub cpu_secs: f64,
    /// Tuples arriving across all nodes.
    pub arrived: u64,
    /// Fraction of arrived tuples shed.
    pub shed: f64,
    /// Result emissions across all queries.
    pub results: usize,
    /// Peak resident set (`VmHWM`, kB; `None` off Linux).
    pub peak_rss_kb: Option<u64>,
    /// Engine pool acquisitions served from a recycled slot.
    pub pool_reused: u64,
    /// Engine pool acquisitions that allocated fresh.
    pub pool_fresh: u64,
    /// Batches returned to the engine pool.
    pub pool_recycled: u64,
    /// Process-wide batch constructions during the run (includes fresh
    /// pool acquisitions; excludes reuses — that's the point).
    pub batch_allocs: u64,
    /// Per-thread CPU attribution (empty unless `--profile`).
    pub profile: Vec<ProfileLine>,
}

impl ScaleE2eRow {
    /// Wall nanoseconds per arrived tuple (inverse throughput).
    pub fn wall_ns_per_tuple(&self) -> f64 {
        self.wall_secs * 1e9 / self.arrived.max(1) as f64
    }

    /// CPU nanoseconds per arrived tuple (the constant factor).
    pub fn cpu_ns_per_tuple(&self) -> f64 {
        self.cpu_secs * 1e9 / self.arrived.max(1) as f64
    }

    /// Fraction of pool acquisitions served without allocating.
    pub fn pool_reuse_fraction(&self) -> f64 {
        let total = self.pool_reused + self.pool_fresh;
        if total == 0 {
            0.0
        } else {
            self.pool_reused as f64 / total as f64
        }
    }

    /// RSS budget for this source count.
    pub fn rss_budget_kb(&self) -> u64 {
        RSS_BASE_KB + self.sources as u64 * RSS_PER_SOURCE_KB
    }

    /// True when peak RSS stayed within budget (vacuously off Linux).
    pub fn within_rss_budget(&self) -> bool {
        self.peak_rss_kb.map_or(true, |p| p <= self.rss_budget_kb())
    }

    /// True when CPU per tuple stayed under the ceiling (vacuously when
    /// CPU accounting is unavailable).
    pub fn within_cpu_budget(&self) -> bool {
        self.cpu_secs == 0.0 || self.cpu_ns_per_tuple() <= CPU_NS_PER_TUPLE_CEILING
    }
}

/// `/proc` CPU fields are exported in fixed 100 Hz ticks (`USER_HZ`).
const CLK_TCK: f64 = 100.0;

/// Cumulative process CPU seconds (`utime + stime` from
/// `/proc/self/stat`; Linux only).
pub fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let (_, _, ticks) = parse_stat_line(&stat)?;
    Some(ticks as f64 / CLK_TCK)
}

/// Peak resident set in kB (`VmHWM` from `/proc/self/status`; Linux
/// only).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Parses a `/proc/.../stat` line into `(comm, state, utime + stime)`.
/// The comm field may itself contain spaces, so fields are taken after
/// the *last* closing paren.
fn parse_stat_line(stat: &str) -> Option<(String, char, u64)> {
    let open = stat.find('(')?;
    let close = stat.rfind(')')?;
    let name = stat.get(open + 1..close)?.to_string();
    let rest: Vec<&str> = stat.get(close + 1..)?.split_whitespace().collect();
    let state = rest.first()?.chars().next()?;
    // Overall stat fields 14/15 (1-indexed); `rest` starts at field 3.
    let utime: u64 = rest.get(11)?.parse().ok()?;
    let stime: u64 = rest.get(12)?.parse().ok()?;
    Some((name, state, utime + stime))
}

/// Last-seen cumulative ticks and runnable-sample counts for one thread.
struct TaskSample {
    name: String,
    ticks: u64,
    run: u64,
    seen: u64,
}

/// One sweep over `/proc/self/task/*/stat`.
fn sample_tasks(acc: &mut HashMap<u32, TaskSample>) {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return;
    };
    for entry in tasks.flatten() {
        let Ok(tid) = entry.file_name().to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(entry.path().join("stat")) else {
            continue;
        };
        if let Some((name, state, ticks)) = parse_stat_line(&stat) {
            let t = acc.entry(tid).or_insert(TaskSample {
                name,
                ticks: 0,
                run: 0,
                seen: 0,
            });
            t.ticks = ticks;
            t.seen += 1;
            if state == 'R' {
                t.run += 1;
            }
        }
    }
}

/// Collapses per-tid samples into per-name lines, sorted by CPU
/// descending.
fn profile_lines(acc: HashMap<u32, TaskSample>) -> Vec<ProfileLine> {
    let mut by_name: BTreeMap<String, ProfileLine> = BTreeMap::new();
    for t in acc.into_values() {
        let line = by_name.entry(t.name.clone()).or_insert(ProfileLine {
            name: t.name,
            cpu_secs: 0.0,
            run_samples: 0,
            samples: 0,
        });
        line.cpu_secs += t.ticks as f64 / CLK_TCK;
        line.run_samples += t.run;
        line.samples += t.seen;
    }
    let mut lines: Vec<ProfileLine> = by_name.into_values().collect();
    lines.sort_by(|a, b| b.cpu_secs.total_cmp(&a.cpu_secs));
    lines
}

/// Runs `sources` single-source AVG queries end to end for `secs` wall
/// seconds (plus a 500 ms warm-up) on a pool of `shards` threads
/// (`None`: available parallelism), optionally sampling per-thread CPU.
pub fn scale_e2e(
    sources: usize,
    shards: Option<usize>,
    secs: u64,
    profile: bool,
    seed: u64,
) -> ScaleE2eRow {
    let sources = sources.max(1);
    let nodes = sources.div_ceil(SOURCES_PER_NODE);
    let per_source_tps = (AGG_TPS_CAP / sources as u64).clamp(1, 10) as u32;
    let batches_per_sec = per_source_tps.min(2);
    let scenario = ScenarioBuilder::new("scale-e2e", seed)
        .nodes(nodes)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(secs.max(1) * 1000))
        .warmup(TimeDelta::from_millis(500))
        .stw_window(TimeDelta::from_secs(1))
        .add_queries(
            Template::Avg,
            sources,
            SourceProfile::steady(per_source_tps, batches_per_sec, Dataset::Uniform),
        )
        .build()
        .expect("placement");

    let allocs0 = batch_allocs();
    let t_setup = Instant::now();
    let mut engine = Engine::start(
        &scenario,
        EngineConfig {
            policy: PolicyKind::BalanceSic.into(),
            shards,
            ..Default::default()
        },
    );
    let setup_secs = t_setup.elapsed().as_secs_f64();
    let pool = engine.batch_pool().clone();
    let cpu0 = cpu_seconds().unwrap_or(0.0);
    let t0 = Instant::now();

    let sampler = profile.then(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let sampler_stop = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut acc = HashMap::new();
            sample_tasks(&mut acc);
            while !sampler_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                sample_tasks(&mut acc);
            }
            profile_lines(acc)
        });
        (stop, handle)
    });

    engine.run_for(Duration::from_micros(
        (scenario.warmup + scenario.duration).as_micros(),
    ));
    // Stop the sampler before shutdown so the engine threads' cumulative
    // CPU is still readable from /proc.
    let profile = match sampler {
        Some((stop, handle)) => {
            stop.store(true, Ordering::Relaxed);
            handle.join().expect("sampler panicked")
        }
        None => Vec::new(),
    };
    let report = engine.finish();
    let wall_secs = t0.elapsed().as_secs_f64();
    let cpu_secs = (cpu_seconds().unwrap_or(cpu0) - cpu0).max(0.0);
    let stats = pool.stats();

    ScaleE2eRow {
        sources,
        nodes,
        shards: report.shards,
        offered_tps: sources as u64 * per_source_tps as u64,
        setup_secs,
        wall_secs,
        cpu_secs,
        arrived: report.nodes.iter().map(|n| n.arrived_tuples).sum(),
        shed: report.shed_fraction(),
        results: report.result_counts.values().sum(),
        peak_rss_kb: peak_rss_kb(),
        pool_reused: stats.reused,
        pool_fresh: stats.fresh,
        pool_recycled: stats.recycled,
        batch_allocs: batch_allocs().saturating_sub(allocs0),
        profile,
    }
}

/// Renders the scale row.
pub fn render(row: &ScaleE2eRow) -> TextTable {
    let mut t = TextTable::new(
        "End-to-end source scale: cost per arrived tuple",
        &[
            "sources",
            "nodes",
            "shards",
            "offered-tps",
            "setup-s",
            "wall-s",
            "cpu-s",
            "arrived",
            "shed",
            "wall-ns/t",
            "cpu-ns/t",
            "rss-kb",
            "rss-budget",
            "pool-reuse",
            "allocs",
        ],
    );
    t.row(vec![
        row.sources.to_string(),
        row.nodes.to_string(),
        row.shards.to_string(),
        row.offered_tps.to_string(),
        f(row.setup_secs),
        f(row.wall_secs),
        f(row.cpu_secs),
        row.arrived.to_string(),
        f(row.shed),
        f2(row.wall_ns_per_tuple()),
        f2(row.cpu_ns_per_tuple()),
        row.peak_rss_kb
            .map(|p| p.to_string())
            .unwrap_or_else(|| "n/a".into()),
        row.rss_budget_kb().to_string(),
        f(row.pool_reuse_fraction()),
        row.batch_allocs.to_string(),
    ]);
    t
}

/// Renders the `--profile` sampler output.
pub fn render_profile(lines: &[ProfileLine]) -> TextTable {
    let mut t = TextTable::new(
        "Per-thread CPU (sampled from /proc/self/task)",
        &["thread", "cpu-s", "runnable", "samples"],
    );
    for l in lines {
        t.row(vec![
            l.name.clone(),
            f(l.cpu_secs),
            l.run_samples.to_string(),
            l.samples.to_string(),
        ]);
    }
    t
}

/// Serialises the row as the `BENCH_scale.json` artefact.
pub fn to_json(row: &ScaleE2eRow) -> String {
    format!(
        "{{\n  \"sources\": {},\n  \"nodes\": {},\n  \"shards\": {},\n  \
         \"offered_tps\": {},\n  \"setup_secs\": {:.3},\n  \
         \"wall_secs\": {:.3},\n  \"cpu_secs\": {:.3},\n  \"arrived\": {},\n  \
         \"shed_fraction\": {:.4},\n  \"results\": {},\n  \
         \"wall_ns_per_tuple\": {:.2},\n  \"cpu_ns_per_tuple\": {:.2},\n  \
         \"peak_rss_kb\": {},\n  \"rss_budget_kb\": {},\n  \
         \"pool\": {{ \"reused\": {}, \"fresh\": {}, \"recycled\": {}, \
         \"reuse_fraction\": {:.4} }},\n  \"batch_allocs\": {}\n}}\n",
        row.sources,
        row.nodes,
        row.shards,
        row.offered_tps,
        row.setup_secs,
        row.wall_secs,
        row.cpu_secs,
        row.arrived,
        row.shed,
        row.results,
        row.wall_ns_per_tuple(),
        row.cpu_ns_per_tuple(),
        row.peak_rss_kb
            .map(|p| p.to_string())
            .unwrap_or_else(|| "null".into()),
        row.rss_budget_kb(),
        row.pool_reused,
        row.pool_fresh,
        row.pool_recycled,
        row.pool_reuse_fraction(),
        row.batch_allocs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_parsers_read_this_process() {
        // The workspace builds and tests on Linux, where both files exist.
        let cpu = cpu_seconds().expect("/proc/self/stat");
        assert!(cpu >= 0.0);
        let rss = peak_rss_kb().expect("VmHWM in /proc/self/status");
        assert!(rss > 0);
    }

    #[test]
    fn stat_line_parses_spaced_comm_names() {
        let line = "42 (tokio runtime (x)) R 1 1 1 0 -1 0 0 0 0 0 7 3 0 0 20 0 1 0 100 0 0";
        let (name, state, ticks) = parse_stat_line(line).expect("parse");
        assert_eq!(name, "tokio runtime (x)");
        assert_eq!(state, 'R');
        assert_eq!(ticks, 10);
    }

    #[test]
    fn tiny_run_produces_a_consistent_row() {
        let row = scale_e2e(8, Some(2), 1, true, 11);
        assert_eq!(row.sources, 8);
        assert_eq!(row.nodes, 1);
        assert!(row.arrived > 0, "sources must deliver tuples");
        assert!(row.wall_secs > 0.0 && row.wall_ns_per_tuple() > 0.0);
        // Named engine threads show up in the profile on Linux.
        assert!(row.profile.iter().any(|l| l.name.starts_with("shard-")));
        assert!(row.profile.iter().any(|l| l.name == "source-pump"));
        let json = to_json(&row);
        assert!(json.contains("\"cpu_ns_per_tuple\""));
        assert!(json.contains("\"pool\""));
        assert!(json.trim_end().ends_with('}'));
        render(&row);
        render_profile(&row.profile);
    }
}
