//! §7.5 — comparison against related work: the FIT throughput LP \[34\] and
//! the Zhao log-utility allocation \[44\], against BALANCE-SIC.

use themis_baselines::prelude::*;
use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::{capacity_for_overload, Scale};
use crate::table::{f, TextTable};

/// Outcome of one related-work comparison row.
#[derive(Debug, Clone)]
pub struct RelatedRow {
    /// Scheme under test.
    pub scheme: String,
    /// Deployment label.
    pub deployment: String,
    /// Queries processing their full input.
    pub fully_admitted: usize,
    /// Queries receiving nothing.
    pub starved: usize,
    /// Jain's index of the scheme's fairness view.
    pub jain: f64,
}

/// The simple §7.5 set-up: 60 two-fragment AVG-all queries whose fragments
/// are co-located on the same two nodes, with capacity for ~3.5 queries.
pub fn simple_setup() -> AllocationProblem {
    let n_queries = 60;
    let hosts: Vec<Vec<usize>> = (0..n_queries).map(|_| vec![0, 1]).collect();
    AllocationProblem::uniform(vec![1.0; n_queries], hosts, vec![3.5, 3.5])
}

/// The complex §7.5 deployment: 20 AVG-all (3 fragments), 20 COV and 20
/// TOP-5 (2 fragments each), fragments randomly placed on 4 nodes.
/// Input rates are proportional to each query's source count.
pub fn complex_setup(seed: u64) -> (Vec<QuerySpec>, Deployment, AllocationProblem) {
    use rand::SeedableRng;
    let mut src = IdGen::new();
    let mut queries = Vec::new();
    for i in 0..60u32 {
        let t = match i / 20 {
            0 => Template::AvgAll { fragments: 3 },
            1 => Template::Cov { fragments: 2 },
            _ => Template::Top5 { fragments: 2 },
        };
        queries.push(t.build(QueryId(i), &mut src));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let deployment = place(&queries, 4, PlacementPolicy::RoundRobin, &mut rng).unwrap();
    let hosts: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            (0..q.n_fragments())
                .map(|fi| deployment.node_of(q.id, fi).unwrap().index())
                .collect()
        })
        .collect();
    let input_rates: Vec<f64> = queries.iter().map(|q| q.n_sources() as f64).collect();
    // Capacity for roughly 40% of the offered per-node load.
    let mut node_load = [0.0f64; 4];
    for (q, hs) in hosts.iter().enumerate() {
        for &n in hs {
            node_load[n] += input_rates[q];
        }
    }
    let capacities: Vec<f64> = node_load.iter().map(|l| l * 0.4).collect();
    let problem = AllocationProblem::uniform(input_rates, hosts, capacities);
    (queries, deployment, problem)
}

/// Runs the §7.5 comparison; `themis_jain` values come from simulator runs
/// of matching scenarios.
pub fn related_work(scale: &Scale, seed: u64) -> Vec<RelatedRow> {
    let mut rows = Vec::new();

    // --- Simple set-up: FIT vs log utility. ---
    let simple = simple_setup();
    let fit = solve_fit(&simple).expect("LP solvable");
    rows.push(RelatedRow {
        scheme: "FIT [34] (max throughput LP)".into(),
        deployment: "60xAVG-all/2 nodes".into(),
        fully_admitted: fit.fully_admitted(&simple, 1e-6),
        starved: fit.starved(1e-6),
        jain: fit.jain_rate_fractions(&simple),
    });
    let pf = solve_log_utility(&simple, UtilityOpts::default());
    rows.push(RelatedRow {
        scheme: "Zhao [44] (log utility)".into(),
        deployment: "60xAVG-all/2 nodes".into(),
        fully_admitted: pf.fully_admitted(&simple, 1e-3),
        starved: pf.starved(1e-6),
        jain: pf.jain_rate_fractions(&simple),
    });

    // --- Complex deployment: log utility vs BALANCE-SIC. ---
    let (_, _, problem) = complex_setup(seed);
    let pf = solve_log_utility(&problem, UtilityOpts::default());
    rows.push(RelatedRow {
        scheme: "Zhao [44] (log utility)".into(),
        deployment: "complex/4 nodes".into(),
        fully_admitted: pf.fully_admitted(&problem, 1e-3),
        starved: pf.starved(1e-6),
        jain: pf.jain_log_utilities(&problem),
    });

    // THEMIS on the equivalent simulated deployment.
    let mut b = ScenarioBuilder::new("related-themis", seed)
        .nodes(4)
        .duration(scale.duration)
        .warmup(scale.warmup);
    for i in 0..60usize {
        let t = match i / 20 {
            0 => Template::AvgAll { fragments: 3 },
            1 => Template::Cov { fragments: 2 },
            _ => Template::Top5 { fragments: 2 },
        };
        b = b.add_queries(t, 1, scale.profile(Dataset::Uniform));
    }
    let total_sources = 60.0 * (30.0 + 4.0 + 40.0) / 3.0;
    let demand = total_sources * scale.tuples_per_sec as f64;
    let b = b.capacity_tps(capacity_for_overload(demand / 4.0, 2.5));
    let scn = b.build().expect("placement");
    let report = run_scenario(scn, SimConfig::default());
    rows.push(RelatedRow {
        scheme: "THEMIS (BALANCE-SIC)".into(),
        deployment: "complex/4 nodes".into(),
        fully_admitted: report
            .per_query
            .iter()
            .filter(|q| q.mean_sic > 0.999)
            .count(),
        starved: report
            .per_query
            .iter()
            .filter(|q| q.mean_sic < 1e-6)
            .count(),
        jain: report.jain(),
    });
    rows
}

/// Renders the comparison table.
pub fn render(rows: &[RelatedRow]) -> TextTable {
    let mut t = TextTable::new(
        "§7.5 comparison against related work",
        &["scheme", "deployment", "full", "starved", "jain"],
    );
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.deployment.clone(),
            r.fully_admitted.to_string(),
            r.starved.to_string(),
            f(r.jain),
        ]);
    }
    t
}
