//! Engine-scale query churn: a flash-crowd cohort arrives mid-run and
//! departs again, on real shard threads.
//!
//! §5 notes that converged SIC values depend on "often time-changing
//! factors such as queries' arrivals and departures"; the simulator's
//! `dynamics` experiment shows BALANCE-SIC re-converging under churn in
//! model time. This experiment exercises the same transition on the
//! **sharded engine** at 512+ nodes: every node hosts one resident AVG
//! query under its declared capacity, then a cohort of flash-crowd
//! queries ([`RatePattern::FlashCrowd`]) attaches onto half the nodes
//! ([`Engine::attach_queries`]), driving them into overload; after a few
//! spike epochs the cohort departs ([`Engine::detach_query`]) and the
//! empty incarnations tear down.
//!
//! The gate asserted when the experiment runs by name (and by the CI
//! smoke): Jain's index over the **resident** queries must *recover*
//! after the cohort departs — within [`JAIN_RECOVERY_SLACK`] of its
//! pre-churn baseline — and the churn phase must actually have shed
//! tuples (otherwise the transition stressed nothing). The phases and
//! verdict are written to `results/BENCH_churn.json` so CI tracks the
//! trajectory per PR.

use std::collections::HashMap;
use std::time::Duration;

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Allowed Jain-index drop from the pre-churn baseline after recovery.
pub const JAIN_RECOVERY_SLACK: f64 = 0.05;

/// One measured phase of the churn run.
#[derive(Debug, Clone)]
pub struct ChurnPhase {
    /// Phase name (`baseline`, `churn`, `recovery`).
    pub name: &'static str,
    /// Measurement window (logical seconds; excludes settle time).
    pub from_s: f64,
    /// End of the window.
    pub to_s: f64,
    /// Jain's index over the resident queries' mean SIC in the window.
    pub resident_jain: f64,
    /// Mean resident SIC in the window.
    pub resident_mean: f64,
    /// Mean cohort SIC in the window (0 while the cohort is away).
    pub cohort_mean: f64,
}

/// Outcome of the churn experiment.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// Nodes in the engine.
    pub nodes: usize,
    /// Shard threads used.
    pub shards: usize,
    /// Resident queries (one per node).
    pub residents: usize,
    /// Cohort queries that arrived and departed.
    pub cohort: usize,
    /// The measured phases.
    pub phases: Vec<ChurnPhase>,
    /// Fraction of arrived tuples shed over the whole run.
    pub shed_fraction: f64,
    /// Ticks fired across all nodes.
    pub ticks: u64,
}

impl ChurnOutcome {
    /// The named phase (the run always produces all three).
    pub fn phase(&self, name: &str) -> &ChurnPhase {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .expect("phase present")
    }

    /// The fairness-recovery gate: resident Jain after the cohort departs
    /// is within [`JAIN_RECOVERY_SLACK`] of the pre-churn baseline, and
    /// the churn actually shed tuples.
    pub fn fairness_recovered(&self) -> bool {
        let baseline = self.phase("baseline").resident_jain;
        let recovery = self.phase("recovery").resident_jain;
        recovery >= baseline - JAIN_RECOVERY_SLACK && self.shed_fraction > 0.0
    }
}

/// Mean per-query SIC over the series samples inside `[from, to)`;
/// queries without samples in the window are skipped.
fn window_means(
    series: &HashMap<QueryId, Vec<(Timestamp, f64)>>,
    ids: &[QueryId],
    from: Timestamp,
    to: Timestamp,
) -> Vec<f64> {
    ids.iter()
        .filter_map(|q| {
            let samples: Vec<f64> = series
                .get(q)?
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, v)| v)
                .collect();
            (!samples.is_empty()).then(|| samples.iter().sum::<f64>() / samples.len() as f64)
        })
        .collect()
}

/// Runs the churn scenario on the engine: `nodes` resident AVG queries
/// (one per node) under enforced node capacities, a flash-crowd cohort of
/// `nodes / 2` queries attached for the middle third and detached again.
/// `secs_per_phase` sizes the three measured phases.
pub fn churn(nodes: usize, shards: Option<usize>, secs_per_phase: u64, seed: u64) -> ChurnOutcome {
    let nodes = nodes.max(2);
    let n_cohort = nodes / 2;
    let resident_rate = 200u32;
    // Residents run at 2/3 of capacity: clean baseline, no shedding.
    let capacity = resident_rate * 3 / 2;
    let stw = TimeDelta::from_secs(2);
    let phase = Duration::from_secs(secs_per_phase.max(2));
    let profile = SourceProfile::steady(resident_rate, 5, Dataset::Uniform);
    // The cohort bursts to 4x in seeded 1 s spikes, one per 4 s epoch:
    // a shared node sees 2x demand off-spike and ~3.3x during a spike.
    let cohort_profile = profile.with_pattern(RatePattern::FlashCrowd {
        every: TimeDelta::from_secs(4),
        width: TimeDelta::from_secs(1),
        magnitude: 4.0,
    });

    let scenario = ScenarioBuilder::new("churn", seed)
        .nodes(nodes)
        .capacity_tps(capacity)
        .stw_window(stw)
        .warmup(TimeDelta::from_micros(stw.as_micros() + 500_000))
        .add_queries(Template::Avg, nodes, profile)
        .build()
        .expect("placement");
    let residents: Vec<QueryId> = scenario.queries.iter().map(|q| q.id).collect();

    let mut engine = Engine::start(
        &scenario,
        EngineConfig {
            shards,
            enforce_capacity: true,
            record_series: true,
            ..Default::default()
        },
    );
    // Warm-up, then the clean baseline phase.
    engine.run_for(Duration::from_micros(stw.as_micros() + 500_000));
    let baseline_from = engine.now();
    engine.run_for(phase);
    let baseline_to = engine.now();

    // The flash crowd arrives: half the nodes now host two queries.
    let cohort = engine.attach_queries(Template::Avg, n_cohort, cohort_profile);
    // Let the arrivals settle one STW before measuring the churn phase.
    engine.run_for(Duration::from_micros(stw.as_micros()));
    let churn_from = engine.now();
    engine.run_for(phase);
    let churn_to = engine.now();

    // The crowd departs; emptied incarnations tear down.
    for &q in &cohort {
        engine.detach_query(q);
    }
    engine.run_for(Duration::from_micros(stw.as_micros()));
    let recovery_from = engine.now();
    engine.run_for(phase);
    let recovery_to = engine.now();

    let shards_used = engine.shards();
    let report = engine.finish();

    let mut phases = Vec::new();
    for (name, from, to) in [
        ("baseline", baseline_from, baseline_to),
        ("churn", churn_from, churn_to),
        ("recovery", recovery_from, recovery_to),
    ] {
        let resident_means = window_means(&report.sic_series, &residents, from, to);
        let cohort_means = window_means(&report.sic_series, &cohort, from, to);
        phases.push(ChurnPhase {
            name,
            from_s: from.as_secs_f64(),
            to_s: to.as_secs_f64(),
            resident_jain: jain_index(&resident_means),
            resident_mean: mean_of(&resident_means),
            cohort_mean: mean_of(&cohort_means),
        });
    }

    ChurnOutcome {
        nodes,
        shards: shards_used,
        residents: residents.len(),
        cohort: cohort.len(),
        phases,
        shed_fraction: report.shed_fraction(),
        ticks: report.nodes.iter().map(|n| n.ticks).sum(),
    }
}

fn mean_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Renders the churn phases.
pub fn render(out: &ChurnOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Engine churn: {} residents + {} flash-crowd arrivals on {} nodes ({} shards)",
            out.residents, out.cohort, out.nodes, out.shards
        ),
        &[
            "phase",
            "window",
            "resident-jain",
            "resident-mean-sic",
            "cohort-mean-sic",
        ],
    );
    for p in &out.phases {
        t.row(vec![
            p.name.to_string(),
            format!("{:.1}s-{:.1}s", p.from_s, p.to_s),
            f(p.resident_jain),
            f(p.resident_mean),
            f(p.cohort_mean),
        ]);
    }
    t
}

/// Serialises the outcome for `results/BENCH_churn.json`.
pub fn to_json(out: &ChurnOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"nodes\": {},\n  \"shards\": {},\n  \"residents\": {},\n  \"cohort\": {},\n",
        out.nodes, out.shards, out.residents, out.cohort
    ));
    s.push_str(&format!(
        "  \"shed_fraction\": {:.6},\n  \"ticks\": {},\n  \"jain_recovery_slack\": {JAIN_RECOVERY_SLACK},\n",
        out.shed_fraction, out.ticks
    ));
    s.push_str(&format!(
        "  \"fairness_recovered\": {},\n  \"phases\": [\n",
        out.fairness_recovered()
    ));
    for (i, p) in out.phases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"from_s\": {:.2}, \"to_s\": {:.2}, \"resident_jain\": {:.6}, \"resident_mean\": {:.6}, \"cohort_mean\": {:.6}}}{}\n",
            p.name,
            p.from_s,
            p.to_s,
            p.resident_jain,
            p.resident_mean,
            p.cohort_mean,
            if i + 1 < out.phases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
