//! Trace replay on the engine: sources driven by a recorded arrival
//! shape ([`RatePattern::Trace`]), with an accuracy gate.
//!
//! The paper's evaluation replays real arrival traces rather than
//! synthetic steady rates; this experiment does the same against the
//! sharded engine. A trace file (CSV/JSON, see `themis_workloads::traces`)
//! is loaded, validated and replayed by every source of an AVG-query
//! cohort on one node, with the node's capacity pinned *below* the
//! trace's peaks so the shape actually forces shedding.
//!
//! Gates asserted when the experiment runs by name (and by the CI
//! smoke):
//!
//! 1. **replay accuracy** — tuples arriving at the node must match the
//!    trace-declared expectation (`rate × horizon ×
//!    mean_factor_over(horizon)`, exact even over partial cycles) within
//!    [`TRACE_ACCURACY_TOLERANCE`];
//! 2. **fairness under the shape** — Jain's index across the queries
//!    stays ≥ [`TRACE_JAIN_FLOOR`] under `balance-sic`;
//! 3. the replay must have **shed something** (a trace that never
//!    overloads gates nothing).
//!
//! The outcome is written to `results/BENCH_trace.json`.

use std::sync::Arc;
use std::time::Duration;

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// Allowed relative error between arrived tuples and the trace-declared
/// expectation.
pub const TRACE_ACCURACY_TOLERANCE: f64 = 0.15;

/// Jain floor across the replaying queries under `balance-sic`.
pub const TRACE_JAIN_FLOOR: f64 = 0.90;

/// Outcome of the trace-replay experiment.
#[derive(Debug)]
pub struct TraceOutcome {
    /// Trace file replayed.
    pub file: String,
    /// Registered trace name.
    pub trace_name: String,
    /// Replay beat in milliseconds (after any `--beat-ms` rescale).
    pub beat_ms: f64,
    /// Beats per cycle.
    pub beats: usize,
    /// The trace's declared long-run mean factor.
    pub mean_factor: f64,
    /// Queries replaying the trace.
    pub queries: usize,
    /// Measured horizon in seconds (engine start to finish).
    pub horizon_s: f64,
    /// Trace-declared expected arrivals over the horizon.
    pub expected_tuples: f64,
    /// Tuples that actually arrived at the node.
    pub arrived_tuples: u64,
    /// Jain's index over the queries' mean SIC.
    pub jain: f64,
    /// Fraction of arrived tuples shed.
    pub shed_fraction: f64,
    /// Shedding ticks fired.
    pub ticks: u64,
}

impl TraceOutcome {
    /// Relative replay error.
    pub fn accuracy_error(&self) -> f64 {
        (self.arrived_tuples as f64 - self.expected_tuples).abs() / self.expected_tuples.max(1.0)
    }

    /// The replay-accuracy gate.
    pub fn accurate(&self) -> bool {
        self.accuracy_error() <= TRACE_ACCURACY_TOLERANCE
    }

    /// The fairness-under-shape gate.
    pub fn fair(&self) -> bool {
        self.jain >= TRACE_JAIN_FLOOR && self.shed_fraction > 0.0
    }
}

/// Replays `data` (already loaded/validated) through `queries` AVG
/// queries on one node for `secs` seconds of measurement, under
/// `balance-sic` with the node capacity pinned at 0.9× the expected
/// demand over the planned window — below the replayed slice's mean.
pub fn trace_replay(data: Arc<TraceData>, secs: u64, seed: u64) -> TraceOutcome {
    let queries = 8usize;
    let rate = 200u32;
    let trace_id = (*data).clone().register();
    let pattern = RatePattern::Trace { trace: trace_id };
    // 20 batches/s: a fine grid, so one-beat shapes quantise cleanly.
    let profile = SourceProfile::steady(rate, 20, Dataset::Uniform).with_pattern(pattern);
    let stw = TimeDelta::from_secs(2);
    let warmup = TimeDelta::from_micros(stw.as_micros() + 500_000);
    // Capacity at 0.9x the expected demand over the *planned window* (a
    // short run may only see a diurnal trace's overnight trough, so the
    // whole-cycle mean would never overload): whatever slice of the
    // shape replays, the node must shed through its busier beats.
    let planned = TimeDelta::from_micros(warmup.as_micros() + secs.max(2) * 1_000_000);
    let windowed_demand = queries as f64 * rate as f64 * data.mean_factor_over(planned);
    let capacity = (0.9 * windowed_demand) as u32;

    let scenario = ScenarioBuilder::new("trace", seed)
        .nodes(1)
        .capacity_tps(capacity)
        .stw_window(stw)
        .warmup(warmup)
        .add_queries(Template::Avg, queries, profile)
        .build()
        .expect("placement");

    let mut engine = Engine::start(
        &scenario,
        EngineConfig {
            enforce_capacity: true,
            record_series: true,
            ..Default::default()
        },
    );
    engine.run_for(Duration::from_micros(warmup.as_micros()));
    engine.run_for(Duration::from_secs(secs.max(2)));
    let horizon = engine.now();
    let report = engine.finish();

    let horizon_delta = TimeDelta(horizon.as_micros());
    let expected =
        queries as f64 * rate as f64 * horizon.as_secs_f64() * data.mean_factor_over(horizon_delta);
    let sics: Vec<f64> = report.per_query_sic.iter().map(|&(_, s)| s).collect();

    TraceOutcome {
        file: String::new(),
        trace_name: data.name().to_string(),
        beat_ms: data.beat().as_micros() as f64 / 1000.0,
        beats: data.factors().len(),
        mean_factor: data.mean_factor(),
        queries,
        horizon_s: horizon.as_secs_f64(),
        expected_tuples: expected,
        arrived_tuples: report.nodes.iter().map(|n| n.arrived_tuples).sum(),
        jain: jain_index(&sics),
        shed_fraction: report.shed_fraction(),
        ticks: report.nodes.iter().map(|n| n.ticks).sum(),
    }
}

/// Renders the trace-replay outcome.
pub fn render(out: &TraceOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Trace replay: `{}` ({} beats x {:.0} ms, mean factor {:.3}) x {} queries",
            out.trace_name, out.beats, out.beat_ms, out.mean_factor, out.queries
        ),
        &[
            "horizon",
            "expected-tuples",
            "arrived-tuples",
            "error",
            "jain",
            "shed",
            "ticks",
        ],
    );
    t.row(vec![
        format!("{:.1}s", out.horizon_s),
        format!("{:.0}", out.expected_tuples),
        out.arrived_tuples.to_string(),
        format!("{:.2}%", out.accuracy_error() * 100.0),
        f(out.jain),
        format!("{:.1}%", out.shed_fraction * 100.0),
        out.ticks.to_string(),
    ]);
    t
}

/// Serialises the outcome for `results/BENCH_trace.json`.
pub fn to_json(out: &TraceOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"file\": \"{}\",\n  \"trace\": \"{}\",\n  \"beat_ms\": {:.3},\n  \"beats\": {},\n",
        out.file, out.trace_name, out.beat_ms, out.beats
    ));
    s.push_str(&format!(
        "  \"mean_factor\": {:.6},\n  \"queries\": {},\n  \"horizon_s\": {:.3},\n",
        out.mean_factor, out.queries, out.horizon_s
    ));
    s.push_str(&format!(
        "  \"expected_tuples\": {:.1},\n  \"arrived_tuples\": {},\n  \"accuracy_error\": {:.6},\n",
        out.expected_tuples,
        out.arrived_tuples,
        out.accuracy_error()
    ));
    s.push_str(&format!(
        "  \"accuracy_tolerance\": {TRACE_ACCURACY_TOLERANCE},\n  \"jain\": {:.6},\n  \"jain_floor\": {TRACE_JAIN_FLOOR},\n",
        out.jain
    ));
    s.push_str(&format!(
        "  \"shed_fraction\": {:.6},\n  \"ticks\": {},\n  \"accurate\": {},\n  \"fair\": {}\n}}\n",
        out.shed_fraction,
        out.ticks,
        out.accurate(),
        out.fair()
    ));
    s
}
