//! Declarative-query parity: the gate behind the spec-compilation
//! refactor.
//!
//! Every Table-1 template is rendered to its canonical query text
//! ([`Template::text`]), re-parsed through the declarative frontend, and
//! compiled through the staged `QueryDef -> ValidatedQuery ->
//! CompiledQuery` pipeline. The gate asserts two things per template:
//!
//! 1. **Structural parity** — the parsed-text path produces an
//!    operator-for-operator identical [`QuerySpec`] to the preset path.
//! 2. **Behavioural parity** — the same overloaded scenario built from
//!    the text path and from the preset path simulates to *bitwise*
//!    identical mean-SIC and Jain numbers under every policy in the
//!    shedding registry (the simulator is deterministic, so any
//!    divergence is a compilation difference, not noise).
//!
//! A third probe attaches a declarative `GROUP BY` query to the live
//! engine mid-run ([`Engine::attach_spec`]) and asserts the dictionary
//! group-by kernel ([`group_kernel_invocations`]) actually fired —
//! proving text reaches the typed columnar hot path, not a row fallback.
//!
//! The outcome is written to `results/BENCH_queries.json`; the
//! `experiments queries` smoke exits non-zero when any gate fails.

use std::time::Duration;

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_operators::kernels::group_kernel_invocations;
use themis_query::prelude::*;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::table::{f, TextTable};

/// The declarative `GROUP BY` query the engine probe attaches.
pub const GROUP_BY_QUERY: &str = "SELECT host, SUM(value) FROM sensors[4] GROUP BY host";

/// One template x policy simulator comparison.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// Registry policy name.
    pub policy: String,
    /// Mean SIC / Jain of the preset-template scenario.
    pub template_sic: (f64, f64),
    /// Mean SIC / Jain of the parsed-text scenario.
    pub spec_sic: (f64, f64),
}

impl PolicyCell {
    /// Bitwise equality of both fairness numbers across the two paths.
    pub fn matches(&self) -> bool {
        self.template_sic.0.to_bits() == self.spec_sic.0.to_bits()
            && self.template_sic.1.to_bits() == self.spec_sic.1.to_bits()
    }
}

/// Parity verdict for one Table-1 template.
#[derive(Debug, Clone)]
pub struct TemplateParityRow {
    /// Template name (Table 1 row).
    pub template: String,
    /// Canonical query text the template renders to.
    pub text: String,
    /// Parsed text compiles to a graph equal to the preset's.
    pub structural_match: bool,
    /// Simulator comparison per registered policy.
    pub policies: Vec<PolicyCell>,
}

impl TemplateParityRow {
    /// Structural and every behavioural cell match.
    pub fn matches(&self) -> bool {
        self.structural_match && self.policies.iter().all(PolicyCell::matches)
    }
}

/// Result of the live-engine `GROUP BY` dispatch probe.
#[derive(Debug, Clone)]
pub struct GroupByProbe {
    /// The query text attached.
    pub query: String,
    /// Group-kernel invocations observed during the attached window.
    pub kernel_calls: u64,
    /// Result emissions the attached query produced.
    pub results: usize,
}

impl GroupByProbe {
    /// The query demonstrably ran through the dictionary kernel and
    /// emitted grouped results.
    pub fn dispatched(&self) -> bool {
        self.kernel_calls > 0 && self.results > 0
    }
}

/// Full outcome of the `queries` experiment.
#[derive(Debug, Clone)]
pub struct QueriesOutcome {
    /// Per-template parity rows.
    pub parity: Vec<TemplateParityRow>,
    /// The engine `GROUP BY` probe.
    pub group_by: GroupByProbe,
}

impl QueriesOutcome {
    /// The CI gate: every template matches on both axes and the
    /// declarative `GROUP BY` reached the kernel.
    pub fn all_match(&self) -> bool {
        self.parity.iter().all(TemplateParityRow::matches) && self.group_by.dispatched()
    }
}

/// The Table-1 presets the parity gate sweeps (complex templates at the
/// fragment counts Table 1 quotes).
fn table1_templates() -> Vec<Template> {
    vec![
        Template::Avg,
        Template::Max,
        Template::Count,
        Template::AvgAll { fragments: 3 },
        Template::Top5 { fragments: 2 },
        Template::Cov { fragments: 2 },
    ]
}

/// An overloaded little federation for one template: six queries on
/// three undersized nodes, so every policy actually sheds and the
/// fairness numbers it is compared on are non-trivial — while the 6x6
/// sweep stays a smoke.
fn parity_scenario(name: String, seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::new(name, seed)
        .nodes(3)
        .capacity_tps(60)
        .stw_window(TimeDelta::from_secs(3))
        .duration(TimeDelta::from_secs(12))
        .warmup(TimeDelta::from_secs(6))
}

/// Runs the structural + behavioural parity sweep.
pub fn queries_parity(seed: u64) -> Vec<TemplateParityRow> {
    let profile = SourceProfile::steady(40, 4, Dataset::Uniform);
    table1_templates()
        .into_iter()
        .map(|t| {
            let text = t.text();
            let parsed = QueryDef::parse(&text)
                .expect("template text parses")
                .named(t.name())
                .validate()
                .expect("template text validates");
            let mut preset_ids = IdGen::new();
            let mut parsed_ids = IdGen::new();
            let structural_match = parsed.compile(QueryId(0), &mut parsed_ids).into_spec()
                == t.build(QueryId(0), &mut preset_ids);
            let policies = registered_policies()
                .into_iter()
                .map(|policy| {
                    let label = format!("queries-{}-{}", t.name(), policy.name());
                    let via_template = run_scenario(
                        parity_scenario(label.clone(), seed)
                            .add_queries(t, 6, profile)
                            .build()
                            .expect("placement"),
                        SimConfig::with_policy(policy.clone()),
                    );
                    let via_spec = run_scenario(
                        parity_scenario(label, seed)
                            .add_query_defs(&parsed, 6, profile)
                            .build()
                            .expect("placement"),
                        SimConfig::with_policy(policy.clone()),
                    );
                    PolicyCell {
                        policy: policy.name().to_string(),
                        template_sic: (via_template.mean_sic(), via_template.jain()),
                        spec_sic: (via_spec.mean_sic(), via_spec.jain()),
                    }
                })
                .collect();
            TemplateParityRow {
                template: t.name().to_string(),
                text,
                structural_match,
                policies,
            }
        })
        .collect()
}

/// Attaches [`GROUP_BY_QUERY`] to a running engine and measures whether
/// the dictionary group-by kernel fired while it was attached.
pub fn group_by_probe(secs: u64, seed: u64) -> GroupByProbe {
    let stw = TimeDelta::from_secs(1);
    let scenario = ScenarioBuilder::new("queries-group-by", seed)
        .nodes(2)
        .capacity_tps(1_000_000)
        .stw_window(stw)
        .duration(TimeDelta::from_secs(secs.max(2)))
        .warmup(TimeDelta::from_millis(500))
        .add_queries(
            Template::Avg,
            1,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        )
        .build()
        .expect("placement");
    let validated = QueryDef::parse(GROUP_BY_QUERY)
        .expect("probe query parses")
        .validate()
        .expect("probe query validates");

    let mut engine = Engine::start(&scenario, EngineConfig::default());
    engine.run_for(Duration::from_millis(500));
    let calls_before = group_kernel_invocations();
    let attached = engine.attach_spec(&validated, SourceProfile::steady(200, 5, Dataset::Uniform));
    engine.run_for(Duration::from_secs(secs.max(2)));
    let kernel_calls = group_kernel_invocations() - calls_before;
    let report = engine.finish();
    GroupByProbe {
        query: GROUP_BY_QUERY.to_string(),
        kernel_calls,
        results: report.result_counts.get(&attached).copied().unwrap_or(0),
    }
}

/// Runs the whole `queries` experiment.
pub fn queries(secs: u64, seed: u64) -> QueriesOutcome {
    QueriesOutcome {
        parity: queries_parity(seed),
        group_by: group_by_probe(secs, seed),
    }
}

/// One ad-hoc declarative query run end-to-end on the engine
/// (`experiments queries --query='<text>'`).
#[derive(Debug, Clone)]
pub struct DeclarativeRun {
    /// Query name (the canonical text unless renamed).
    pub name: String,
    /// Canonical re-rendered text.
    pub text: String,
    /// Fragments in the compiled graph.
    pub fragments: usize,
    /// Operators in fragment 0.
    pub ops: usize,
    /// Sources feeding the query.
    pub sources: usize,
    /// Mean result SIC over the run.
    pub mean_sic: f64,
    /// Result emissions observed.
    pub results: usize,
}

/// Parses, validates, compiles and runs one declarative query on the
/// engine for `secs` seconds. Errors are the frontend's actionable
/// [`SpecError`] messages, ready to print.
pub fn run_declarative(text: &str, secs: u64, seed: u64) -> Result<DeclarativeRun, SpecError> {
    let validated = QueryDef::parse(text)?.validate()?;
    let canonical = validated.def().text();
    let name = validated.def().name.clone();
    let scenario = ScenarioBuilder::new(format!("declarative: {name}"), seed)
        .nodes(validated.def().fragments.max(1))
        .capacity_tps(1_000_000)
        .stw_window(TimeDelta::from_secs(1))
        .duration(TimeDelta::from_secs(secs.max(2)))
        .warmup(TimeDelta::from_millis(500))
        .add_query_defs(
            &validated,
            1,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        )
        .build()
        .expect("single-query placement");
    let q = &scenario.queries[0];
    let (id, fragments, ops, sources) = (
        q.id,
        q.n_fragments(),
        q.fragments[0].n_operators(),
        q.n_sources(),
    );
    let report = run_engine(&scenario, EngineConfig::default());
    let mean_sic = report
        .per_query_sic
        .iter()
        .find(|(qid, _)| *qid == id)
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    Ok(DeclarativeRun {
        name,
        text: canonical,
        fragments,
        ops,
        sources,
        mean_sic,
        results: report.result_counts.get(&id).copied().unwrap_or(0),
    })
}

/// Renders the parity sweep plus the group-by probe.
pub fn render(out: &QueriesOutcome) -> TextTable {
    let mut t = TextTable::new(
        "Declarative-query parity: parsed text vs Table-1 presets (all registry policies)",
        &[
            "template",
            "policy",
            "graph",
            "tmpl-sic/jain",
            "spec-sic/jain",
            "match",
        ],
    );
    for row in &out.parity {
        for cell in &row.policies {
            t.row(vec![
                row.template.clone(),
                cell.policy.clone(),
                if row.structural_match {
                    "equal"
                } else {
                    "DIFFERS"
                }
                .to_string(),
                format!("{}/{}", f(cell.template_sic.0), f(cell.template_sic.1)),
                format!("{}/{}", f(cell.spec_sic.0), f(cell.spec_sic.1)),
                if cell.matches() { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.row(vec![
        "GROUP BY probe".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{} kernel calls", out.group_by.kernel_calls),
        format!("{} results", out.group_by.results),
        if out.group_by.dispatched() {
            "yes"
        } else {
            "NO"
        }
        .to_string(),
    ]);
    t
}

/// Renders one ad-hoc declarative run.
pub fn render_declarative(run: &DeclarativeRun) -> TextTable {
    let mut t = TextTable::new(
        format!("Declarative query: {}", run.name),
        &[
            "text",
            "fragments",
            "ops/frag",
            "sources",
            "mean-sic",
            "results",
        ],
    );
    t.row(vec![
        run.text.clone(),
        run.fragments.to_string(),
        run.ops.to_string(),
        run.sources.to_string(),
        f(run.mean_sic),
        run.results.to_string(),
    ]);
    t
}

/// Serialises the outcome for `results/BENCH_queries.json`.
pub fn to_json(out: &QueriesOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"all_match\": {},\n", out.all_match()));
    s.push_str(&format!(
        "  \"group_by\": {{\"query\": \"{}\", \"kernel_calls\": {}, \"results\": {}, \"dispatched\": {}}},\n",
        out.group_by.query,
        out.group_by.kernel_calls,
        out.group_by.results,
        out.group_by.dispatched()
    ));
    s.push_str("  \"templates\": [\n");
    for (i, row) in out.parity.iter().enumerate() {
        let policies: Vec<String> = row
            .policies
            .iter()
            .map(|c| {
                format!(
                    "{{\"policy\": \"{}\", \"match\": {}, \"sic\": {:.6}, \"jain\": {:.6}}}",
                    c.policy,
                    c.matches(),
                    c.spec_sic.0,
                    c.spec_sic.1
                )
            })
            .collect();
        s.push_str(&format!(
            "    {{\"template\": \"{}\", \"text\": \"{}\", \"structural_match\": {}, \"policies\": [{}]}}{}\n",
            row.template,
            row.text,
            row.structural_match,
            policies.join(", "),
            if i + 1 < out.parity.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
