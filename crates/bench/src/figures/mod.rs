//! One module per evaluation artefact (table or figure), each exposing a
//! data-producing function plus a text renderer so the binary, the
//! Criterion benches and the integration tests share one implementation.

pub mod ablation;
pub mod adversarial;
pub mod batching;
pub mod churn;
pub mod correlated;
pub mod correlation;
pub mod dynamics;
pub mod fairness;
pub mod federated;
pub mod kernels;
pub mod overhead;
pub mod parity;
pub mod queries;
pub mod recovery;
pub mod related;
pub mod scalability;
pub mod scale;
pub mod scale_e2e;
pub mod tables;
pub mod trace;
