//! §7.2 — BALANCE-SIC fairness (Figures 8-11).

use themis_core::prelude::*;
use themis_query::prelude::PlacementPolicy;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::{
    add_complex_mix, add_complex_mix_varied, capacity_for_overload, complex_mix,
    mix_sources_per_fragment, Scale,
};
use crate::table::{f, TextTable};

/// One fairness sweep point: the mean SIC + Jain's index pair the paper
/// plots on twin axes.
#[derive(Debug, Clone)]
pub struct FairnessPoint {
    /// X-axis label (query count, interval, fragment count, ratio...).
    pub x: String,
    /// Policy used.
    pub policy: String,
    /// Mean SIC over queries.
    pub mean_sic: f64,
    /// Jain's fairness index.
    pub jain: f64,
    /// Std of per-query SIC values.
    pub std: f64,
}

fn point(x: String, report: &SimReport) -> FairnessPoint {
    FairnessPoint {
        x,
        policy: report.policy.clone(),
        mean_sic: report.fairness.mean,
        jain: report.fairness.jain,
        std: report.fairness.std,
    }
}

/// Figure 8: single-node fairness while the number of queries grows.
/// The node capacity is fixed so that the smallest count is barely
/// overloaded and the largest is overloaded by more than 10x.
pub fn fig8(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let counts = [30usize, 90, 150, 210, 270, 330];
    let demand_per_query = mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(scale.n(30) as f64 * demand_per_query, 1.1);
    let mut out = Vec::new();
    for &count in &counts {
        let b = ScenarioBuilder::new(format!("fig8-{count}"), seed)
            .nodes(1)
            .capacity_tps(capacity)
            .duration(scale.duration)
            .warmup(scale.warmup);
        let scn = add_complex_mix(b, scale.n(count), 1, scale.profile(Dataset::Uniform))
            .build()
            .expect("single fragment placement");
        let report = run_scenario(scn, SimConfig::default());
        out.push(point(count.to_string(), &report));
    }
    out
}

/// Figure 9: fairness across shedding intervals (25-250 ms); 1-3 fragment
/// queries over 6 nodes.
pub fn fig9(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let intervals_ms = [25u64, 50, 100, 150, 200, 250];
    let n_queries = scale.n(120);
    let demand = n_queries as f64 * 2.0 * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(demand / 6.0, 3.0);
    let mut out = Vec::new();
    for &ms in &intervals_ms {
        let b = ScenarioBuilder::new(format!("fig9-{ms}ms"), seed)
            .nodes(6)
            .placement(PlacementPolicy::UniformRandom)
            .capacity_tps(capacity)
            .shedding_interval(TimeDelta::from_millis(ms))
            .duration(scale.duration)
            .warmup(scale.warmup);
        let scn = add_complex_mix_varied(b, n_queries, &[1, 2, 3], scale.profile(Dataset::Uniform))
            .build()
            .expect("placement");
        let report = run_scenario(scn, SimConfig::default());
        out.push(point(format!("{ms}ms"), &report));
    }
    out
}

/// Figure 10: BALANCE-SIC vs random shedding on 18 nodes, sweeping the
/// fragments per query (2-6 and mixed) with a constant total fragment
/// count.
pub fn fig10(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let total_fragments = scale.n(360);
    let mut out = Vec::new();
    let configs: Vec<(String, Vec<usize>)> = vec![
        ("2".into(), vec![2]),
        ("3".into(), vec![3]),
        ("4".into(), vec![4]),
        ("5".into(), vec![5]),
        ("6".into(), vec![6]),
        ("mixed".into(), vec![1, 2, 3, 4, 5, 6]),
    ];
    for (label, frags) in configs {
        let mean_frags = frags.iter().sum::<usize>() as f64 / frags.len() as f64;
        let n_queries = ((total_fragments as f64 / mean_frags).round() as usize).max(1);
        let demand =
            total_fragments as f64 * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
        let capacity = capacity_for_overload(demand / 18.0, 3.0);
        for policy in [PolicyKind::BalanceSic, PolicyKind::Random] {
            let b = ScenarioBuilder::new(format!("fig10-{label}-{}", policy.name()), seed)
                .nodes(18)
                .placement(PlacementPolicy::UniformRandom)
                .capacity_tps(capacity)
                .duration(scale.duration)
                .warmup(scale.warmup);
            let scn = add_complex_mix_varied(b, n_queries, &frags, scale.profile(Dataset::Uniform))
                .build()
                .expect("18-node placement");
            let report = run_scenario(scn, SimConfig::with_policy(policy));
            out.push(point(label.clone(), &report));
        }
    }
    out
}

/// Figure 11: fairness vs the ratio of 3-fragment queries (10 nodes,
/// roughly constant total fragments).
pub fn fig11(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let ratios = [0.1f64, 0.2, 0.4, 0.6, 0.8, 1.0];
    let total_fragments = scale.n(300) as f64;
    let mut out = Vec::new();
    for &r in &ratios {
        // n queries with fragments 3r + (1-r) = 1 + 2r on average.
        let n_queries = ((total_fragments / (1.0 + 2.0 * r)).round() as usize).max(1);
        let n3 = ((n_queries as f64 * r).round()) as usize;
        let demand = total_fragments * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
        let capacity = capacity_for_overload(demand / 10.0, 3.0);
        let mut b = ScenarioBuilder::new(format!("fig11-{r}"), seed)
            .nodes(10)
            .placement(PlacementPolicy::UniformRandom)
            .capacity_tps(capacity)
            .duration(scale.duration)
            .warmup(scale.warmup);
        for i in 0..n_queries {
            let frags = if i < n3 { 3 } else { 1 };
            b = b.add_queries(complex_mix(frags, i), 1, scale.profile(Dataset::Uniform));
        }
        let scn = b.build().expect("placement");
        let report = run_scenario(scn, SimConfig::default());
        out.push(point(format!("{r:.1}"), &report));
    }
    out
}

/// Renders fairness points.
pub fn render(title: &str, x_name: &str, points: &[FairnessPoint]) -> TextTable {
    let mut t = TextTable::new(title, &[x_name, "policy", "mean-sic", "jain", "std"]);
    for p in points {
        t.row(vec![
            p.x.clone(),
            p.policy.to_string(),
            f(p.mean_sic),
            f(p.jain),
            f(p.std),
        ]);
    }
    t
}
