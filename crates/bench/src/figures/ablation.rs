//! Ablations beyond the paper's figures (flagged as extensions in
//! DESIGN.md §6): the `updateSIC` dissemination switch (Figure 4's
//! pathology at scale) and the batch-admission order of Algorithm 1
//! line 16.

use themis_query::prelude::PlacementPolicy;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::figures::fairness::FairnessPoint;
use crate::scenarios::{add_complex_mix, capacity_for_overload, mix_sources_per_fragment, Scale};
use crate::table::{f, TextTable};

/// An asymmetric deployment — single-fragment queries co-located with
/// 3-fragment spanning queries — which is where the Figure-4 pathology
/// shows: without `updateSIC`, nodes over-service the spanning queries
/// whose local SIC view is capped below the single-fragment queries'.
fn base_scenario(name: &str, scale: &Scale, seed: u64) -> Scenario {
    let n_span = scale.n(20);
    let n_local = scale.n(40);
    let total_fragments = (3 * n_span + n_local) as f64;
    let demand = total_fragments * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(demand / 6.0, 3.0);
    let b = ScenarioBuilder::new(name, seed)
        .nodes(6)
        .placement(PlacementPolicy::UniformRandom)
        .capacity_tps(capacity)
        .duration(scale.duration)
        .warmup(scale.warmup);
    let b = add_complex_mix(b, n_local, 1, scale.profile(Dataset::Uniform));
    add_complex_mix(b, n_span, 3, scale.profile(Dataset::Uniform))
        .build()
        .expect("placement")
}

/// Ablation: coordinator `updateSIC` dissemination on vs off (Figure 4 at
/// scale). Without it, every node balances only its local view and
/// multi-fragment queries drift apart.
pub fn update_sic_ablation(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let mut out = Vec::new();
    for (label, coordinator) in [("with-updateSIC", true), ("without-updateSIC", false)] {
        let cfg = SimConfig {
            coordinator,
            ..Default::default()
        };
        let report = run_scenario(base_scenario(label, scale, seed), cfg);
        out.push(FairnessPoint {
            x: label.into(),
            policy: report.policy.clone(),
            mean_sic: report.fairness.mean,
            jain: report.fairness.jain,
            std: report.fairness.std,
        });
    }
    out
}

/// Ablation: the batch-admission order of Algorithm 1 line 16
/// (`max(xSIC)` vs lowest-first vs arrival order). Keeping the most
/// valuable batches should achieve the highest mean SIC for the same
/// tuple budget.
pub fn batch_order_ablation(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let mut out = Vec::new();
    for (label, policy) in [
        ("highest-sic-first", PolicyKind::BalanceSic),
        ("fifo-order", PolicyKind::BalanceSicFifoOrder),
        ("lowest-sic-first", PolicyKind::BalanceSicLowestFirst),
    ] {
        let report = run_scenario(
            base_scenario(label, scale, seed),
            SimConfig::with_policy(policy),
        );
        out.push(FairnessPoint {
            x: label.into(),
            policy: report.policy.clone(),
            mean_sic: report.fairness.mean,
            jain: report.fairness.jain,
            std: report.fairness.std,
        });
    }
    out
}

/// Extension experiment: all shedding policies on the same overloaded
/// mixed workload. BALANCE-SIC should dominate on Jain's index;
/// the priority (admission-control) baseline reproduces the FIT LP's
/// serve-few-starve-many outcome inside the running system.
pub fn policy_comparison(scale: &Scale, seed: u64) -> Vec<FairnessPoint> {
    let mut out = Vec::new();
    for policy in [
        PolicyKind::BalanceSic,
        PolicyKind::Random,
        PolicyKind::Fifo,
        PolicyKind::Priority,
    ] {
        let report = run_scenario(
            base_scenario(policy.name(), scale, seed),
            SimConfig::with_policy(policy),
        );
        out.push(FairnessPoint {
            x: policy.name().into(),
            policy: report.policy.clone(),
            mean_sic: report.fairness.mean,
            jain: report.fairness.jain,
            std: report.fairness.std,
        });
    }
    out
}

/// Renders ablation points.
pub fn render(title: &str, points: &[FairnessPoint]) -> TextTable {
    let mut t = TextTable::new(title, &["variant", "mean-sic", "jain", "std"]);
    for p in points {
        t.row(vec![p.x.clone(), f(p.mean_sic), f(p.jain), f(p.std)]);
    }
    t
}
