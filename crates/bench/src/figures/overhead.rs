//! §7.6 — the overhead of BALANCE-SIC shedding: mean shedder execution
//! time per invocation (fair vs random), batch-header bytes and
//! coordinator traffic.

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::complex_mix;
use crate::table::{f, TextTable};

/// Overhead measurements of one engine run.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Shedding policy.
    pub policy: String,
    /// Mean shedder execution time per invocation (µs).
    pub mean_shed_us: f64,
    /// Fraction of tuples shed.
    pub shed_fraction: f64,
    /// Coordinator messages sent during the run.
    pub coordinator_messages: u64,
    /// Coordinator bytes (30 B per message).
    pub coordinator_bytes: u64,
}

/// Builds the mixed-workload engine scenario used for the overhead
/// measurement. Wall-clock seconds, so keep `secs` small.
fn overhead_scenario(secs: u64, seed: u64) -> Scenario {
    let mut b = ScenarioBuilder::new("overhead", seed)
        .nodes(2)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_secs(secs))
        .warmup(TimeDelta::from_secs(2))
        .stw_window(TimeDelta::from_secs(4));
    for i in 0..6usize {
        b = b.add_queries(
            complex_mix(2, i),
            1,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        );
    }
    b.build().expect("placement")
}

/// Runs the §7.6 overhead comparison on the real engine: same workload,
/// fair vs random shedder, with a synthetic per-tuple cost that forces
/// constant overload.
pub fn overhead(secs: u64, seed: u64) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for policy in [PolicyKind::BalanceSic, PolicyKind::Random] {
        let scn = overhead_scenario(secs, seed);
        let cfg = EngineConfig {
            policy: policy.into(),
            synthetic_cost: TimeDelta::from_micros(300),
            ..Default::default()
        };
        let report = run_engine(&scn, cfg);
        rows.push(OverheadRow {
            policy: report.policy.clone(),
            mean_shed_us: report.mean_shed_time_us(),
            shed_fraction: report.shed_fraction(),
            coordinator_messages: report.coordinator_messages,
            coordinator_bytes: report.coordinator_messages * SicUpdate::WIRE_BYTES as u64,
        });
    }
    rows
}

/// Renders the overhead table, including the static wire costs of §7.6.
pub fn render(rows: &[OverheadRow]) -> TextTable {
    let mut t = TextTable::new(
        "§7.6 shedder overhead (batch header: 10 B, SIC update: 30 B)",
        &[
            "policy",
            "shed-us/invocation",
            "shed-fraction",
            "coord-msgs",
            "coord-bytes",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.to_string(),
            f(r.mean_shed_us),
            f(r.shed_fraction),
            r.coordinator_messages.to_string(),
            r.coordinator_bytes.to_string(),
        ]);
    }
    if rows.len() == 2 && rows[1].mean_shed_us > 0.0 {
        let ratio = rows[0].mean_shed_us / rows[1].mean_shed_us;
        t.row(vec![
            "overhead-ratio".into(),
            f(ratio),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    t
}
