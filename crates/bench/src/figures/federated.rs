//! Multi-process federation parity: N source processes feed one engine
//! process over TCP, and every registered shedding policy must
//! reproduce its in-process SIC/Jain numbers.
//!
//! For each policy the experiment runs the canonical federated scenario
//! ([`themis_workloads::remote::build_federated_scenario`]) twice with
//! the same seed:
//!
//! * a **control** arm — the ordinary in-process engine, pump and
//!   shards in one process;
//! * a **federated** arm — the engine with `remote_sources` and a TCP
//!   ingest listener on loopback, fed by `--sources-procs` forked
//!   source-pump subprocesses, each driving its partition of the same
//!   seeded source drivers.
//!
//! Because the remote pump enumerates and seeds sources exactly like
//! the engine's installer, the federation collectively offers the same
//! tuple streams; the arms may differ only by transport timing. The
//! gate requires, per policy: relative mean-SIC difference within
//! [`SIC_REL_BOUND`], absolute Jain difference within
//! [`JAIN_ABS_BOUND`], no engine errors, and a non-zero remote batch
//! count (the wire actually carried the load). The verdict and measured
//! values go to `results/BENCH_federated.json`.

use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use themis_core::shedder::Policy;
use themis_engine::prelude::*;
use themis_workloads::remote::{build_federated_scenario, FederatedParams};

use crate::table::{f, TextTable};

/// Allowed relative difference in mean settled SIC between the
/// federated arm and the in-process control, per policy.
pub const SIC_REL_BOUND: f64 = 0.02;

/// Allowed absolute difference in Jain's index between the arms.
pub const JAIN_ABS_BOUND: f64 = 0.02;

/// Shard threads both arms run on (fixed, so the comparison never
/// depends on the machine's parallelism).
const SHARDS: usize = 2;

/// Attempts per policy before the gate gives up. Both arms measure live
/// wall-clock runs, and on a small (even single-core) machine a
/// scheduler stall can move enough batches across shedding ticks to
/// push one attempt past the bounds. A systematic codec or transport
/// bias fails every attempt; a stall passes on retry.
const MAX_TRIALS: usize = 3;

/// One policy's pair of runs.
#[derive(Debug, Clone)]
pub struct FederatedArm {
    /// Policy name (registry spelling).
    pub policy: String,
    /// Mean settled per-query SIC, in-process control.
    pub control_sic: f64,
    /// Jain's index, in-process control.
    pub control_jain: f64,
    /// Mean settled per-query SIC, federated arm.
    pub federated_sic: f64,
    /// Jain's index, federated arm.
    pub federated_jain: f64,
    /// Batches the ingest listener decoded off the wire.
    pub remote_batches: u64,
    /// Batches the source processes reported shedding from their full
    /// send queues (link-level loss, surfaced via their byes).
    pub remote_shed_batches: u64,
    /// Engine errors in the federated arm (shard panics + ingest
    /// failures); must be zero on a clean run.
    pub engine_errors: usize,
}

impl FederatedArm {
    /// Relative mean-SIC difference between the arms.
    pub fn sic_rel_diff(&self) -> f64 {
        (self.federated_sic - self.control_sic).abs() / self.control_sic.max(1e-9)
    }

    /// Absolute Jain difference between the arms.
    pub fn jain_diff(&self) -> f64 {
        (self.federated_jain - self.control_jain).abs()
    }

    /// This policy's slice of the gate.
    pub fn within_bounds(&self) -> bool {
        self.sic_rel_diff() <= SIC_REL_BOUND
            && self.jain_diff() <= JAIN_ABS_BOUND
            && self.engine_errors == 0
            && self.remote_batches > 0
    }
}

/// Outcome of the federated parity experiment.
#[derive(Debug)]
pub struct FederatedOutcome {
    /// The canonical scenario parameters both sides rebuilt.
    pub params: FederatedParams,
    /// Source subprocesses forked per federated run.
    pub sources_procs: usize,
    /// One row per policy, registry order.
    pub arms: Vec<FederatedArm>,
}

impl FederatedOutcome {
    /// The gate: every policy within bounds.
    pub fn passed(&self) -> bool {
        !self.arms.is_empty() && self.arms.iter().all(|a| a.within_bounds())
    }
}

fn engine_config(policy: Policy) -> EngineConfig {
    EngineConfig {
        policy,
        enforce_capacity: true,
        shards: Some(SHARDS),
        ..Default::default()
    }
}

/// The in-process control: ordinary pump, same scenario, same seed.
fn run_control(policy: Policy, params: &FederatedParams) -> (f64, f64) {
    let scenario = build_federated_scenario(params);
    let report = run_engine(&scenario, engine_config(policy));
    if std::env::var_os("THEMIS_FED_DEBUG").is_some() {
        eprintln!(
            "control: arrived {} kept {} shed {} ticks {} results {}",
            report.nodes.iter().map(|n| n.arrived_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.kept_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.shed_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.ticks).sum::<u64>(),
            report.result_counts.values().sum::<usize>(),
        );
    }
    (report.fairness.mean, report.fairness.jain)
}

/// The federated arm: engine with a loopback ingest listener and no
/// local pump, fed by `procs` forked source-pump children (the
/// `experiments` binary re-executed in its hidden child mode).
fn run_federated(
    policy: Policy,
    params: &FederatedParams,
    procs: usize,
    exe: &Path,
) -> Result<(f64, f64, u64, u64, usize), String> {
    let scenario = build_federated_scenario(params);
    let cfg = EngineConfig {
        ingest_listen: Some("127.0.0.1:0".to_string()),
        remote_sources: true,
        ..engine_config(policy)
    };
    let mut engine = Engine::start(&scenario, cfg);
    let addr = engine.ingest_addr().expect("ingest listener bound");
    // Timeline anchor: every child back-dates its schedule epoch to the
    // engine's own epoch, so the federation and the in-process control
    // share one slide-aligned emission timeline (the engine warm-up
    // absorbs the spawn latency the children fast-forward over).
    let start_unix_us = engine.epoch_unix_us();
    let run_ms = params.warmup_ms + params.duration_ms;
    let mut children: Vec<Child> = Vec::with_capacity(procs);
    for part in 0..procs {
        let child = Command::new(exe)
            .arg("--source-pump-child")
            .arg(format!("--addr={addr}"))
            .arg(format!("--part={part}"))
            .arg(format!("--parts={procs}"))
            .arg(format!("--run-ms={run_ms}"))
            .arg(format!("--start-unix-us={start_unix_us}"))
            .arg(format!("--seed={}", params.seed))
            .arg(format!("--nodes={}", params.nodes))
            .arg(format!("--queries={}", params.queries))
            .arg(format!("--rate={}", params.rate_tps))
            .arg(format!("--batches={}", params.batches_per_sec))
            .arg(format!("--capacity={}", params.capacity_tps))
            .arg(format!("--stw-ms={}", params.stw_ms))
            .arg(format!("--warmup-ms={}", params.warmup_ms))
            .arg(format!("--duration-ms={}", params.duration_ms))
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("fork source pump {part}: {e}"))?;
        children.push(child);
    }
    engine.run_for(Duration::from_millis(params.warmup_ms));
    engine.run_for(Duration::from_millis(params.duration_ms));
    // Drain tail: the children started after the engine, so they finish
    // (and say bye) slightly after the measured window ends. Sampling is
    // paused so the idle wire's windowed SIC decay stays out of the
    // numbers the gate compares.
    engine.pause_sampling();
    engine.run_for(Duration::from_millis(800));
    let mut child_failures = 0usize;
    for (part, child) in children.iter_mut().enumerate() {
        match wait_with_timeout(child, Duration::from_secs(10)) {
            Some(status) if status.success() => {}
            Some(status) => {
                eprintln!("(federated: source pump {part} exited {status})");
                child_failures += 1;
            }
            None => {
                eprintln!("(federated: source pump {part} hung; killed)");
                let _ = child.kill();
                let _ = child.wait();
                child_failures += 1;
            }
        }
    }
    let report = engine.finish();
    if std::env::var_os("THEMIS_FED_DEBUG").is_some() {
        eprintln!(
            "federated: arrived {} kept {} shed {} ticks {} results {}",
            report.nodes.iter().map(|n| n.arrived_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.kept_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.shed_tuples).sum::<u64>(),
            report.nodes.iter().map(|n| n.ticks).sum::<u64>(),
            report.result_counts.values().sum::<usize>(),
        );
    }
    for e in &report.errors {
        eprintln!("(federated: engine error: {e})");
    }
    Ok((
        report.fairness.mean,
        report.fairness.jain,
        report.remote_batches,
        report.remote_shed_batches,
        report.errors.len() + child_failures,
    ))
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) => {
                if Instant::now() >= deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return None,
        }
    }
}

/// Runs the federated parity gate over `policies` with `procs` source
/// subprocesses per federated run. `exe` is the binary re-executed as
/// the source-pump child; `secs` sizes each arm's measured duration.
pub fn federated(
    policies: &[Policy],
    procs: usize,
    secs: u64,
    seed: u64,
    exe: &Path,
) -> FederatedOutcome {
    let stw_ms = 1500u64;
    let params = FederatedParams {
        seed,
        stw_ms,
        // One STW to fill the sliding estimators plus a wide margin for
        // child-process exec latency: a pump forked onto a loaded
        // machine may join the shared timeline a second late, and that
        // slack must burn inside warm-up, not the sampled window.
        warmup_ms: stw_ms + 1000,
        duration_ms: secs.max(3) * 1000,
        ..FederatedParams::default()
    };
    let mut arms = Vec::with_capacity(policies.len());
    for policy in policies {
        let name = policy.name().to_string();
        let mut best: Option<FederatedArm> = None;
        for trial in 1..=MAX_TRIALS {
            let (control_sic, control_jain) = run_control(policy.clone(), &params);
            let (federated_sic, federated_jain, remote_batches, remote_shed_batches, engine_errors) =
                match run_federated(policy.clone(), &params, procs, exe) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("(federated: {name}: {e})");
                        (0.0, 0.0, 0, 0, 1)
                    }
                };
            let arm = FederatedArm {
                policy: name.clone(),
                control_sic,
                control_jain,
                federated_sic,
                federated_jain,
                remote_batches,
                remote_shed_batches,
                engine_errors,
            };
            let done = arm.within_bounds();
            let better = match &best {
                Some(b) => arm.sic_rel_diff() < b.sic_rel_diff(),
                None => true,
            };
            if better {
                best = Some(arm);
            }
            if done {
                break;
            }
            if trial < MAX_TRIALS {
                eprintln!(
                    "(federated: {name}: attempt {trial} out of bounds; retrying \
                     — wall-clock stall or real divergence, the next attempts tell)"
                );
            }
        }
        arms.push(best.expect("at least one trial ran"));
    }
    FederatedOutcome {
        params,
        sources_procs: procs,
        arms,
    }
}

/// Renders the parity table.
pub fn render(out: &FederatedOutcome) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Federated parity: {} source processes over TCP loopback vs in-process \
             ({} queries on {} nodes, {} t/s vs {} t/s capacity; bounds: sic {:.0}%, jain {:.2})",
            out.sources_procs,
            out.params.queries,
            out.params.nodes,
            out.params.rate_tps,
            out.params.capacity_tps,
            SIC_REL_BOUND * 100.0,
            JAIN_ABS_BOUND
        ),
        &[
            "policy",
            "sic-local",
            "sic-fed",
            "rel-diff-%",
            "jain-local",
            "jain-fed",
            "wire-batches",
            "wire-shed",
            "ok",
        ],
    );
    for a in &out.arms {
        t.row(vec![
            a.policy.clone(),
            f(a.control_sic),
            f(a.federated_sic),
            format!("{:.2}", a.sic_rel_diff() * 100.0),
            f(a.control_jain),
            f(a.federated_jain),
            a.remote_batches.to_string(),
            a.remote_shed_batches.to_string(),
            if a.within_bounds() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Serialises the outcome for `results/BENCH_federated.json`.
pub fn to_json(out: &FederatedOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"sources_procs\": {},\n  \"nodes\": {},\n  \"queries\": {},\n",
        out.sources_procs, out.params.nodes, out.params.queries
    ));
    s.push_str(&format!(
        "  \"rate_tps\": {},\n  \"capacity_tps\": {},\n  \"duration_ms\": {},\n",
        out.params.rate_tps, out.params.capacity_tps, out.params.duration_ms
    ));
    s.push_str(&format!(
        "  \"sic_rel_bound\": {SIC_REL_BOUND},\n  \"jain_abs_bound\": {JAIN_ABS_BOUND},\n"
    ));
    s.push_str(&format!("  \"passed\": {},\n  \"arms\": [\n", out.passed()));
    for (i, a) in out.arms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"control_sic\": {:.6}, \"federated_sic\": {:.6}, \
             \"sic_rel_diff\": {:.6}, \"control_jain\": {:.6}, \"federated_jain\": {:.6}, \
             \"remote_batches\": {}, \"remote_shed_batches\": {}, \"engine_errors\": {}, \
             \"ok\": {}}}{}\n",
            a.policy,
            a.control_sic,
            a.federated_sic,
            a.sic_rel_diff(),
            a.control_jain,
            a.federated_jain,
            a.remote_batches,
            a.remote_shed_batches,
            a.engine_errors,
            a.within_bounds(),
            if i + 1 < out.arms.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
