//! `Value`-arena iteration vs typed column kernels: the micro-benchmark
//! behind the `kernels` experiment.
//!
//! PR 3 made the hot path columnar but left payloads in a
//! dynamically-typed `Value` arena, so every aggregate read still paid an
//! enum match and a 16-byte stride per element. With per-query schemas
//! ([`Schema`]) the same batch stores native `Vec<f64>` / `Vec<i64>`
//! columns and the aggregate bank runs through the vectorized
//! [`themis_operators::kernels`]. This module builds the *same* 1M-row
//! batch in both representations and races four stages:
//!
//! 1. **aggregate** — the AVG/MAX/MIN bank (sum+count, max, min passes)
//!    over one `f64` field;
//! 2. **aggregate-shed** — the same bank with 25% of rows shed, so the
//!    kernels' word-at-a-time drop handling is on the measured path;
//! 3. **cov** — one-pass covariance sums over two paired columns;
//! 4. **filter** — a `>= rhs` predicate counted via the word-packed mask
//!    kernel vs a scalar row walk;
//! 5. **topk** — partial top-k selection vs a full sort of 1M
//!    `(id, value)` pairs;
//! 6. **group** — per-tag `(sum, count)` over a dictionary-encoded key
//!    column: the scalar `HashMap` per-key fold (what
//!    `GroupAggregateLogic` runs on arena panes) vs
//!    [`kernels::group_sum_count_f64`] hashing on raw dictionary codes.
//!
//! Reported numbers are mean ns per row per stage, alongside the
//! [`batch_allocs`] delta per iteration so allocation regressions on the
//! measured paths are visible next to the throughput. When run by name
//! (`experiments kernels`) the aggregate and group stages each assert
//! the typed kernels are ≥ 2× faster than the `Value`-arena path and the
//! rows are exported as `results/BENCH_kernels.json` so the perf
//! trajectory is tracked per PR.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use themis_core::prelude::*;
use themis_operators::kernels;
use themis_operators::prelude::CmpOp;

use crate::table::{f2, TextTable};

/// Sizing of the measured batch.
#[derive(Debug, Clone, Copy)]
pub struct KernelsScale {
    /// Rows in the measured batch (the ISSUE's 1M-row floor).
    pub rows: usize,
    /// Timed iterations per path and stage.
    pub iters: usize,
}

impl KernelsScale {
    /// The default shape: a 1M-row batch, 15 timed iterations.
    pub fn default_scale() -> Self {
        KernelsScale {
            rows: 1_000_000,
            iters: 15,
        }
    }

    /// Reduced iteration count for smoke runs (`--quick`); the batch
    /// stays at 1M rows so the ≥ 2× assertion keeps its meaning.
    pub fn quick() -> Self {
        KernelsScale {
            iters: 5,
            ..Self::default_scale()
        }
    }
}

/// One measured comparison: the same computation on both payload layouts.
#[derive(Debug, Clone)]
pub struct KernelsRow {
    /// Which stage was measured.
    pub stage: &'static str,
    /// Mean ns per row iterating the `Value` arena.
    pub value_ns_per_row: f64,
    /// Mean ns per row through the typed column kernels.
    pub typed_ns_per_row: f64,
    /// [`TupleBatch`] constructions per iteration on the arena path.
    pub value_allocs_per_iter: u64,
    /// [`TupleBatch`] constructions per iteration on the typed path.
    pub typed_allocs_per_iter: u64,
}

impl KernelsRow {
    /// How many times faster the typed kernels are.
    pub fn speedup(&self) -> f64 {
        if self.typed_ns_per_row <= 0.0 {
            f64::INFINITY
        } else {
            self.value_ns_per_row / self.typed_ns_per_row
        }
    }
}

/// Tiny deterministic value generator (the bench must not depend on the
/// workload RNG shapes).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_key(&mut self, n: i64) -> i64 {
        (self.next_f64() * n as f64) as i64
    }
}

/// The measured schema: `[x: f64, y: f64, id: i64]`.
fn bench_schema() -> Schema {
    Schema::new([
        ("x", FieldType::F64),
        ("y", FieldType::F64),
        ("id", FieldType::I64),
    ])
}

/// Builds the same logical batch in both layouts: `.0` is the `Value`
/// arena, `.1` the schema-typed columns.
fn build_batches(rows: usize, seed: u64) -> (TupleBatch, TupleBatch) {
    let mut rng = Lcg(seed | 1);
    let mut arena = TupleBatch::with_capacity(3, rows);
    let mut typed = TupleBatch::with_schema_capacity(bench_schema(), rows);
    for i in 0..rows {
        let row = [
            Value::F64(rng.next_f64() * 100.0),
            Value::F64(rng.next_f64() * 100.0),
            Value::I64(rng.next_key(1 << 16)),
        ];
        let ts = Timestamp(i as u64);
        arena.push_row(ts, Sic::ZERO, &row);
        typed.push_row(ts, Sic::ZERO, &row);
    }
    (arena, typed)
}

/// Drops every 4th row on both batches (the aggregate-shed stage).
fn shed_quarter(b: &mut TupleBatch) {
    for i in (0..b.rows()).step_by(4) {
        b.drop_row(i);
    }
}

/// The scalar aggregate bank, exactly as the pre-kernel operators read a
/// pane: three `column_f64` folds (sum+count, max, min).
fn aggregate_value_path(b: &TupleBatch) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in b.column_f64(0) {
        sum += v;
        n += 1;
    }
    let max = b.column_f64(0).fold(None, |acc: Option<f64>, v| {
        Some(acc.map_or(v, |a| a.max(v)))
    });
    let min = b.column_f64(0).fold(None, |acc: Option<f64>, v| {
        Some(acc.map_or(v, |a| a.min(v)))
    });
    sum / n.max(1) as f64 + max.unwrap_or(0.0) + min.unwrap_or(0.0)
}

/// The typed aggregate bank: the same three passes through the kernels.
fn aggregate_typed_path(b: &TupleBatch) -> f64 {
    let col = b.f64_column(0).expect("typed batch");
    let (sum, n) = kernels::sum_count_f64(col, b.drops());
    let max = kernels::max_f64(col, b.drops());
    let min = kernels::min_f64(col, b.drops());
    sum / n.max(1) as f64 + max.unwrap_or(0.0) + min.unwrap_or(0.0)
}

/// Scalar covariance, as the pre-kernel `CovLogic` read panes: collect
/// both columns, then the two-pass mean-centered fold.
fn cov_value_path(b: &TupleBatch) -> f64 {
    let xs: Vec<f64> = b.column_f64(0).collect();
    let ys: Vec<f64> = b.column_f64(1).collect();
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        acc += (xs[i] - mx) * (ys[i] - my);
    }
    acc / (n as f64 - 1.0)
}

/// Typed covariance: zero-copy slices into the one-pass sums kernel.
fn cov_typed_path(b: &TupleBatch) -> f64 {
    let xs = kernels::live_f64(b, 0);
    let ys = kernels::live_f64(b, 1);
    kernels::cov_sums(&xs, &ys).sample_cov().unwrap_or(0.0)
}

const FILTER_RHS: f64 = 66.0;

/// Scalar filter count: per-row predicate evaluation through row views.
fn filter_value_path(b: &TupleBatch) -> f64 {
    let pred = themis_operators::prelude::Predicate::new(0, CmpOp::Ge, FILTER_RHS);
    b.iter().filter(|t| pred.eval_row(&t.values)).count() as f64
}

/// Typed filter count: word-packed predicate mask + popcount.
fn filter_typed_path(b: &TupleBatch) -> f64 {
    let col = b.f64_column(0).expect("typed batch");
    kernels::mask_count(&kernels::predicate_mask(
        col,
        CmpOp::Ge,
        FILTER_RHS,
        b.drops(),
    )) as f64
}

const TOPK_K: usize = 5;

/// Builds the `(id, value)` pair list once per iteration (both paths pay
/// the same build), then selects the top k by full sort (value path) or
/// partial selection (typed path).
fn topk_pairs(b: &TupleBatch) -> Vec<(i64, f64)> {
    match (b.i64_column(2), b.f64_column(0)) {
        (Some(ids), Some(vals)) => ids.iter().copied().zip(vals.iter().copied()).collect(),
        _ => b.iter().map(|t| (t.i64(2), t.f64(0))).collect(),
    }
}

fn topk_value_path(b: &TupleBatch) -> f64 {
    let mut pairs = topk_pairs(b);
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(TOPK_K);
    pairs.iter().map(|&(_, v)| v).sum()
}

fn topk_typed_path(b: &TupleBatch) -> f64 {
    let mut pairs = topk_pairs(b);
    kernels::partial_top_k(&mut pairs, TOPK_K);
    pairs.iter().map(|&(_, v)| v).sum()
}

// ---------------------------------------------------------------------
// Group-by on dictionary codes
// ---------------------------------------------------------------------

/// Distinct tags in the group stage: a mid-size source population, well
/// inside the kernel's dense accumulator range.
const GROUP_TAGS: usize = 4096;

/// The group-stage schema: `[tag: Tag, x: f64]`.
fn group_schema() -> Schema {
    Schema::new([("tag", FieldType::Tag), ("x", FieldType::F64)])
}

/// Builds the same tagged batch in both layouts (the arena stores the
/// dictionary codes as `Value::Tag` rows).
fn build_group_batches(rows: usize, seed: u64) -> (TupleBatch, TupleBatch) {
    let mut rng = Lcg(seed | 1);
    let schema = group_schema();
    let dict = schema.interner().expect("tag schema").clone();
    let codes: Vec<u32> = (0..GROUP_TAGS)
        .map(|i| dict.intern(&format!("src-{i:05}")))
        .collect();
    let mut arena = TupleBatch::with_capacity(2, rows);
    let mut typed = TupleBatch::with_schema_capacity(schema, rows);
    for i in 0..rows {
        let code = codes[rng.next_key(GROUP_TAGS as i64) as usize];
        let row = [Value::Tag(code), Value::F64(rng.next_f64() * 100.0)];
        let ts = Timestamp(i as u64);
        arena.push_row(ts, Sic::ZERO, &row);
        typed.push_row(ts, Sic::ZERO, &row);
    }
    (arena, typed)
}

/// The scalar per-key reference: the `HashMap` fold the group-aggregate
/// logic runs on arena panes.
fn group_value_path(b: &TupleBatch) -> f64 {
    let mut acc: HashMap<u32, (f64, u64)> = HashMap::new();
    for t in b.iter() {
        let code = t.get(0).map(|v| v.as_i64()).unwrap_or(0).max(0) as u32;
        let v = t.get(1).map(|v| v.as_f64()).unwrap_or(0.0);
        let e = acc.entry(code).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    acc.iter()
        .map(|(&c, &(s, n))| c as f64 + s + n as f64)
        .sum()
}

/// The typed path: the kernel hashing on the raw code slice.
fn group_typed_path(b: &TupleBatch) -> f64 {
    let keys = b.tag_column(0).expect("tag column");
    let vals = b.f64_column(1).expect("typed batch");
    kernels::group_sum_count_f64(keys.codes(), vals, b.drops())
        .into_iter()
        .map(|(c, s, n)| c as f64 + s + n as f64)
        .sum()
}

/// Times `pass` over `iters` runs (plus warm-up) and returns mean ns per
/// row.
fn measure(scale: &KernelsScale, mut pass: impl FnMut() -> f64) -> f64 {
    for _ in 0..scale.iters.div_ceil(5).max(2) {
        black_box(pass());
    }
    let t0 = Instant::now();
    for _ in 0..scale.iters {
        black_box(pass());
    }
    t0.elapsed().as_nanos() as f64 / (scale.iters.max(1) * scale.rows.max(1)) as f64
}

/// [`measure`] plus the [`batch_allocs`] delta per iteration (warm-up
/// included in the averaging window).
fn measure_with_allocs(scale: &KernelsScale, pass: impl FnMut() -> f64) -> (f64, u64) {
    let a0 = batch_allocs();
    let ns = measure(scale, pass);
    let iters = (scale.iters.div_ceil(5).max(2) + scale.iters) as u64;
    (ns, batch_allocs().saturating_sub(a0) / iters.max(1))
}

/// Measures one stage on both layouts.
fn race_stage(
    scale: &KernelsScale,
    stage: &'static str,
    value_pass: impl FnMut() -> f64,
    typed_pass: impl FnMut() -> f64,
) -> KernelsRow {
    let (value_ns_per_row, value_allocs_per_iter) = measure_with_allocs(scale, value_pass);
    let (typed_ns_per_row, typed_allocs_per_iter) = measure_with_allocs(scale, typed_pass);
    KernelsRow {
        stage,
        value_ns_per_row,
        typed_ns_per_row,
        value_allocs_per_iter,
        typed_allocs_per_iter,
    }
}

/// Runs every stage on both payload layouts.
pub fn kernels_race(scale: &KernelsScale) -> Vec<KernelsRow> {
    let (arena, typed) = build_batches(scale.rows, 20160626);
    let (mut arena_shed, mut typed_shed) = (arena.clone(), typed.clone());
    shed_quarter(&mut arena_shed);
    shed_quarter(&mut typed_shed);
    let (garena, gtyped) = build_group_batches(scale.rows, 20160626);
    vec![
        race_stage(
            scale,
            "aggregate",
            || aggregate_value_path(&arena),
            || aggregate_typed_path(&typed),
        ),
        race_stage(
            scale,
            "aggregate-shed",
            || aggregate_value_path(&arena_shed),
            || aggregate_typed_path(&typed_shed),
        ),
        race_stage(
            scale,
            "cov",
            || cov_value_path(&arena),
            || cov_typed_path(&typed),
        ),
        race_stage(
            scale,
            "filter",
            || filter_value_path(&arena),
            || filter_typed_path(&typed),
        ),
        race_stage(
            scale,
            "topk",
            || topk_value_path(&arena),
            || topk_typed_path(&typed),
        ),
        race_stage(
            scale,
            "group",
            || group_value_path(&garena),
            || group_typed_path(&gtyped),
        ),
    ]
}

/// Renders the comparison.
pub fn render(rows: &[KernelsRow]) -> TextTable {
    let mut t = TextTable::new(
        "Typed column kernels: Value-arena path vs typed path (ns/row)",
        &[
            "stage",
            "value-ns",
            "typed-ns",
            "speedup",
            "value-allocs",
            "typed-allocs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.stage.to_string(),
            f2(r.value_ns_per_row),
            f2(r.typed_ns_per_row),
            f2(r.speedup()),
            r.value_allocs_per_iter.to_string(),
            r.typed_allocs_per_iter.to_string(),
        ]);
    }
    t
}

/// Serialises the rows as the `BENCH_kernels.json` artefact.
pub fn to_json(rows: &[KernelsRow]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {{ \"value_ns_per_row\": {:.2}, \"typed_ns_per_row\": {:.2}, \
             \"speedup\": {:.2}, \"value_allocs_per_iter\": {}, \
             \"typed_allocs_per_iter\": {} }}{}\n",
            r.stage,
            r.value_ns_per_row,
            r.typed_ns_per_row,
            r.speedup(),
            r.value_allocs_per_iter,
            r.typed_allocs_per_iter,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batches() -> (TupleBatch, TupleBatch) {
        build_batches(500, 7)
    }

    #[test]
    fn both_layouts_hold_the_same_rows() {
        let (arena, typed) = tiny_batches();
        assert_eq!(arena.rows(), typed.rows());
        assert!(typed.schema().is_some() && arena.schema().is_none());
        for i in [0usize, 63, 64, 499] {
            assert_eq!(arena.row(i).values, typed.row(i).values, "row {i}");
        }
    }

    #[test]
    fn stage_paths_agree() {
        let (mut arena, mut typed) = tiny_batches();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
        assert!(close(
            aggregate_value_path(&arena),
            aggregate_typed_path(&typed)
        ));
        assert!(close(cov_value_path(&arena), cov_typed_path(&typed)));
        assert_eq!(filter_value_path(&arena), filter_typed_path(&typed));
        assert_eq!(topk_value_path(&arena), topk_typed_path(&typed));
        // And with a quarter of the rows shed.
        shed_quarter(&mut arena);
        shed_quarter(&mut typed);
        assert!(close(
            aggregate_value_path(&arena),
            aggregate_typed_path(&typed)
        ));
        assert_eq!(filter_value_path(&arena), filter_typed_path(&typed));
    }

    #[test]
    fn group_paths_agree() {
        let (mut arena, mut typed) = build_group_batches(700, 13);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
        assert!(close(group_value_path(&arena), group_typed_path(&typed)));
        // And with a quarter of the rows shed.
        shed_quarter(&mut arena);
        shed_quarter(&mut typed);
        assert!(close(group_value_path(&arena), group_typed_path(&typed)));
    }

    #[test]
    fn measurement_produces_rows_and_json() {
        let scale = KernelsScale {
            rows: 400,
            iters: 2,
        };
        let rows = kernels_race(&scale);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.value_ns_per_row > 0.0, "{}", r.stage);
            assert!(r.typed_ns_per_row > 0.0, "{}", r.stage);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"aggregate\""));
        assert!(json.contains("\"topk\""));
        assert!(json.contains("\"group\""));
        assert!(json.contains("\"typed_allocs_per_iter\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
