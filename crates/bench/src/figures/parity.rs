//! Sim↔engine parity over the unified shedding-policy registry: every
//! registered [`Policy`] runs on the same overloaded workload in the
//! deterministic simulator *and* the multi-threaded prototype engine.
//!
//! This is the measurement the single-registry refactor exists to enable:
//! before it, the engine knew only 2 of the simulator's 6 policies, so no
//! figure could compare a policy's behaviour across runtimes.

use themis_core::prelude::*;
use themis_engine::prelude::*;
use themis_query::prelude::Template;
use themis_sim::prelude::*;
use themis_workloads::prelude::*;

use crate::scenarios::{add_complex_mix, capacity_for_overload, mix_sources_per_fragment, Scale};
use crate::table::{f, TextTable};

/// One policy's outcome in both runtimes.
#[derive(Debug, Clone)]
pub struct ParityRow {
    /// The registry policy.
    pub policy: Policy,
    /// Simulator: mean per-query SIC.
    pub sim_mean_sic: f64,
    /// Simulator: Jain's index over per-query SIC values.
    pub sim_jain: f64,
    /// Simulator: fraction of arrived tuples shed.
    pub sim_shed: f64,
    /// Engine: fraction of arrived tuples shed.
    pub engine_shed: f64,
    /// Engine: mean shedder execution time per invocation (µs).
    pub engine_shed_us: f64,
}

/// The simulator side: an overloaded complex-mix federation.
fn sim_scenario(name: &str, scale: &Scale, seed: u64) -> Scenario {
    let n_queries = scale.n(18);
    let fragments = 2;
    let demand =
        (n_queries * fragments) as f64 * mix_sources_per_fragment() * scale.tuples_per_sec as f64;
    let capacity = capacity_for_overload(demand / 4.0, 3.0);
    add_complex_mix(
        ScenarioBuilder::new(name, seed)
            .nodes(4)
            .capacity_tps(capacity)
            .duration(scale.duration)
            .warmup(scale.warmup),
        n_queries,
        fragments,
        scale.profile(Dataset::Uniform),
    )
    .build()
    .expect("placement")
}

/// The engine side: wall-clock seconds, so kept short; a synthetic
/// per-tuple cost forces genuine overload on every run.
fn engine_scenario(name: &str, secs: u64, seed: u64) -> Scenario {
    ScenarioBuilder::new(name, seed)
        .nodes(2)
        .capacity_tps(1_000_000)
        .duration(TimeDelta::from_millis(secs * 1000))
        .warmup(TimeDelta::from_millis(500))
        .stw_window(TimeDelta::from_secs(1))
        .add_queries(
            Template::Avg,
            4,
            SourceProfile::steady(300, 5, Dataset::Uniform),
        )
        .build()
        .expect("placement")
}

/// Runs each policy through both runtimes and collects the parity rows.
///
/// `engine_secs` is the measured wall-clock duration per engine run (the
/// simulator side uses `scale`'s simulated durations and is cheap).
pub fn policy_parity(
    policies: &[Policy],
    scale: &Scale,
    engine_secs: u64,
    seed: u64,
) -> Vec<ParityRow> {
    policies
        .iter()
        .map(|policy| {
            let policy = policy.clone();
            let sim = run_scenario(
                sim_scenario(policy.name(), scale, seed),
                SimConfig::with_policy(policy.clone()),
            );
            let engine = run_engine(
                &engine_scenario(policy.name(), engine_secs, seed),
                EngineConfig {
                    policy: policy.clone(),
                    synthetic_cost: TimeDelta::from_micros(1500),
                    ..Default::default()
                },
            );
            ParityRow {
                policy,
                sim_mean_sic: sim.mean_sic(),
                sim_jain: sim.jain(),
                sim_shed: sim.shed_fraction(),
                engine_shed: engine.shed_fraction(),
                engine_shed_us: engine.mean_shed_time_us(),
            }
        })
        .collect()
}

/// Renders the parity table.
pub fn render(rows: &[ParityRow]) -> TextTable {
    let mut t = TextTable::new(
        "Policy parity: every registry policy in simulator and engine",
        &[
            "policy",
            "sim-mean-sic",
            "sim-jain",
            "sim-shed",
            "engine-shed",
            "engine-us/shed",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.name().to_string(),
            f(r.sim_mean_sic),
            f(r.sim_jain),
            f(r.sim_shed),
            f(r.engine_shed),
            f(r.engine_shed_us),
        ]);
    }
    t
}
