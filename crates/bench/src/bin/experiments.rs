//! Regenerates the THEMIS evaluation tables and figures.
//!
//! ```text
//! experiments [all|table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|
//!              fig13|fig14|related|overhead|ablation|dynamics|policies|
//!              scale|scale-e2e|batching|kernels|churn|queries|trace|
//!              correlated|adversarial|recovery|federated]
//!             [--quick] [--policy=<name>] [--query='<text>'] [--nodes=<n>]
//!             [--shards=<k>] [--secs=<s>] [--sources=<n>]
//!             [--sources-procs=<n>] [--profile] [--file=<path>]
//!             [--beat-ms=<ms>]
//! ```
//!
//! Each experiment prints the series the paper plots and writes a CSV
//! under `results/`. Flags are validated against the selected
//! experiments (`themis_bench::cli`): an unknown flag, or one that none
//! of the selected experiments accepts, exits 2 listing the valid flags
//! for the selection. `--quick` switches to the reduced scale used by
//! the benches (for smoke runs). `--policy=<name>` restricts the
//! `policies` parity experiment to one policy looked up in the shedding
//! registry (e.g. `balance-sic`, `fifo`, or any name registered at
//! startup); an unknown name exits 2 listing the registered policies.
//! `--nodes`/`--shards`/`--secs` size the `scale` experiment (default
//! 1024 nodes on the machine's parallelism); `scale` exits non-zero when
//! the process's peak thread count exceeds the sharded engine's
//! `shards + 3` budget, which is what the CI smoke asserts — for that
//! reason it only runs when named explicitly, never as part of `all`.
//! `batching` races the pre-columnar row representation against the live
//! `TupleBatch` path on the shedder hot loop and a join/aggregate
//! pipeline, writes `results/BENCH_batching.json`, and (when named
//! explicitly, like `scale`) exits non-zero if the batch path is not at
//! least 2x faster on the shedder loop. `kernels` races the `Value`-arena
//! aggregate reads against the typed column kernels on a 1M-row batch,
//! writes `results/BENCH_kernels.json`, and (when named explicitly)
//! exits non-zero if the typed aggregate bank is not at least 2x faster.
//! `churn` runs a 512+-node engine scenario (sized by `--nodes`/
//! `--shards`/`--secs`) with a flash-crowd query cohort attaching and
//! detaching mid-run, writes `results/BENCH_churn.json`, and exits
//! non-zero if resident Jain fairness fails to recover after the cohort
//! departs — the CI churn smoke. `scale-e2e` drives `--sources=<n>`
//! (default 100000) single-source AVG queries through the full engine,
//! writes `results/BENCH_scale.json` with end-to-end wall/CPU ns per
//! tuple, peak RSS and batch-pool traffic, and exits non-zero when the
//! CPU-per-tuple ceiling or the RSS budget is breached — the CI scale
//! smoke runs it at `--sources=10000`. `queries` runs the declarative
//! frontend parity gate: every Table-1 template's canonical query text
//! must compile to the same graph and simulate to bitwise-identical
//! SIC/Jain numbers as the preset path under every registry policy, and
//! a declarative `GROUP BY` attached to the live engine must dispatch
//! the dictionary group-by kernel; it writes
//! `results/BENCH_queries.json` and exits non-zero on any mismatch —
//! the CI queries smoke. `--query='<text>'` additionally runs one
//! ad-hoc declarative query end-to-end on the engine (parse errors exit
//! 2 with the frontend's message). `--profile` adds a per-thread CPU
//! table sampled from `/proc`. `trace` replays an arrival-trace file
//! (`--file=<path>`, default `traces/worldcup98-diurnal.csv`; `.csv` or
//! `.json`, validated with actionable errors; `--beat-ms` rescales the
//! replay beat) through the engine and gates on replay accuracy against
//! the trace-declared mean plus Jain under `balance-sic`, writing
//! `results/BENCH_trace.json`. `correlated` races one shared
//! (simultaneous) burst process against the independent-burst control at
//! identical declared demand and gates the correlated run's Jain within
//! a slack of the control, writing `results/BENCH_correlated.json`.
//! `adversarial` runs a strategic tick-phase-locked source against
//! honest peers under every registered policy and gates the strategic
//! SIC advantage ≤ epsilon under the `balance-sic` family (non-SIC
//! baselines are documented, not asserted), writing
//! `results/BENCH_adversarial.json`. `recovery` kills a shard
//! mid-overload under balance-sic, restores it from checkpoint + WAL
//! tail, and gates the post-recovery SIC error and Jain difference
//! against an uninterrupted same-seed control, writing
//! `results/BENCH_recovery.json`. `federated` forks
//! `--sources-procs=<n>` source subprocesses (this same binary,
//! re-executed in a hidden child mode) that ship their batches to the
//! engine's TCP ingest listener over loopback, and gates every
//! registered policy's federated SIC/Jain within 2% of the in-process
//! control, writing `results/BENCH_federated.json`. All five are
//! explicit-only CI smokes, like `churn`. Built to be run with
//! `--release`.

use std::time::Instant;

use themis_bench::cli;
use themis_bench::figures::batching::{self, BatchingScale};
use themis_bench::figures::correlation::{correlation, render as render_corr, CorrelationQuery};
use themis_bench::figures::fairness::{fig10, fig11, fig8, fig9, render as render_fair};
use themis_bench::figures::federated as federated_fig;
use themis_bench::figures::kernels::{self, KernelsScale};
use themis_bench::figures::overhead::{overhead, render as render_overhead};
use themis_bench::figures::parity::{policy_parity, render as render_parity};
use themis_bench::figures::queries;
use themis_bench::figures::recovery;
use themis_bench::figures::related::{related_work, render as render_related};
use themis_bench::figures::scalability::{fig12, fig13, fig14, render as render_scal};
use themis_bench::figures::scale as engine_scale;
use themis_bench::figures::{ablation, dynamics, scale_e2e, tables};
use themis_bench::figures::{adversarial, churn, correlated, trace as trace_fig};
use themis_bench::scenarios::Scale;
use themis_bench::table::TextTable;
use themis_core::shedder::{lookup_policy, registered_policies, Policy};

const SEED: u64 = 20160626; // SIGMOD'16 started June 26.
const RESULTS_DIR: &str = "results";

fn emit(name: &str, table: TextTable) {
    println!("{}", table.render());
    if let Err(e) = table.write_csv(RESULTS_DIR, name) {
        eprintln!("(could not write {RESULTS_DIR}/{name}.csv: {e})");
    }
}

/// Writes `results/BENCH_<name>.json` atomically: the payload lands in a
/// temp file first and is renamed into place, so a reader (CI collecting
/// artifacts, a dashboard tailing results) never observes a half-written
/// JSON document even if the process dies mid-write.
fn write_bench_json(name: &str, json: &str) {
    let json_path = format!("{RESULTS_DIR}/BENCH_{name}.json");
    let tmp_path = format!("{json_path}.tmp");
    if let Err(e) = std::fs::create_dir_all(RESULTS_DIR)
        .and_then(|()| std::fs::write(&tmp_path, json))
        .and_then(|()| std::fs::rename(&tmp_path, &json_path))
    {
        eprintln!("(could not write {json_path}: {e})");
    }
}

fn main() {
    // Hidden child mode: `experiments --source-pump-child --addr=... ...`
    // runs this binary as a remote source pump and exits. The `federated`
    // experiment forks itself this way (via `current_exe`) because
    // `cargo run -p themis-bench` does not build sibling packages'
    // binaries, so the standalone `source-pump` may not exist yet.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--source-pump-child") {
        match themis_workloads::remote::pump_main(&raw[1..]) {
            Ok(stats) => {
                eprintln!(
                    "source-pump-child: emitted {} batches, wrote {}, shed {}",
                    stats.emitted_batches, stats.sent_batches, stats.shed_batches
                );
                return;
            }
            Err(e) => {
                eprintln!("source-pump-child: {e}");
                std::process::exit(1);
            }
        }
    }
    let opts = match cli::parse(raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let quick = opts.quick;
    let profile = opts.profile;
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default_scale()
    };
    let (nodes_arg, shards_arg) = (opts.nodes, opts.shards);
    let (secs_arg, sources_arg) = (opts.secs, opts.sources);
    let query_arg = opts.query.as_deref();
    let policies: Vec<Policy> = match opts.policy.as_deref() {
        Some(name) => match lookup_policy(name) {
            Ok(p) => vec![p],
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        None => registered_policies(),
    };
    let run = |name: &str| opts.selected(name);
    let t0 = Instant::now();

    if run("table1") {
        emit("table1", tables::table1());
    }
    if run("table2") {
        emit("table2", tables::table2());
    }
    if run("fig6") {
        for (q, name) in [
            (CorrelationQuery::Avg, "fig6a_avg"),
            (CorrelationQuery::Count, "fig6b_count"),
            (CorrelationQuery::Max, "fig6c_max"),
        ] {
            let pts = correlation(q, &scale, SEED);
            emit(name, render_corr(q, &pts));
        }
    }
    if run("fig7") {
        for (q, name) in [
            (CorrelationQuery::Top5, "fig7a_top5"),
            (CorrelationQuery::Cov, "fig7b_cov"),
        ] {
            let pts = correlation(q, &scale, SEED);
            emit(name, render_corr(q, &pts));
        }
    }
    if run("fig8") {
        let pts = fig8(&scale, SEED);
        emit(
            "fig08",
            render_fair("Figure 8: single-node fairness", "queries", &pts),
        );
    }
    if run("fig9") {
        let pts = fig9(&scale, SEED);
        emit(
            "fig09",
            render_fair("Figure 9: shedding interval", "interval", &pts),
        );
    }
    if run("fig10") {
        let pts = fig10(&scale, SEED);
        emit(
            "fig10",
            render_fair(
                "Figure 10: BALANCE-SIC vs random across 18 nodes",
                "fragments",
                &pts,
            ),
        );
    }
    if run("fig11") {
        let pts = fig11(&scale, SEED);
        emit(
            "fig11",
            render_fair("Figure 11: multi-fragmentation ratio", "ratio-3frag", &pts),
        );
    }
    if run("fig12") {
        let pts = fig12(&scale, SEED);
        emit(
            "fig12",
            render_scal("Figure 12: scaling nodes", "nodes", &pts),
        );
    }
    if run("fig13") {
        let pts = fig13(&scale, SEED);
        emit(
            "fig13",
            render_scal("Figure 13: scaling queries", "queries", &pts),
        );
    }
    if run("fig14") {
        let pts = fig14(&scale, SEED);
        emit(
            "fig14",
            render_scal(
                "Figure 14: burstiness and wide-area latency",
                "deployment",
                &pts,
            ),
        );
    }
    if run("related") {
        let rows = related_work(&scale, SEED);
        emit("related", render_related(&rows));
    }
    if run("overhead") {
        let secs = if quick { 4 } else { 10 };
        let rows = overhead(secs, SEED);
        emit("overhead", render_overhead(&rows));
    }
    if run("ablation") {
        let pts = ablation::update_sic_ablation(&scale, SEED);
        emit(
            "ablation_update_sic",
            ablation::render(
                "Ablation: updateSIC dissemination (Figure 4 at scale)",
                &pts,
            ),
        );
        let pts = ablation::batch_order_ablation(&scale, SEED);
        emit(
            "ablation_batch_order",
            ablation::render("Ablation: Algorithm 1 batch-admission order", &pts),
        );
        let pts = ablation::policy_comparison(&scale, SEED);
        emit(
            "ablation_policies",
            ablation::render("Extension: shedding-policy comparison", &pts),
        );
    }
    if run("policies") {
        let secs = if quick { 1 } else { 3 };
        let rows = policy_parity(&policies, &scale, secs, SEED);
        emit("policies", render_parity(&rows));
    }
    if run("dynamics") {
        let (pts, arrive, depart) = dynamics::dynamics(&scale, SEED);
        emit("dynamics", dynamics::render(&pts, arrive, depart));
    }
    // Explicit-only (not part of `all`), like `scale`: a speedup smoke
    // whose micro-benchmark timings (and the BENCH_batching.json
    // trajectory artifact) would be polluted by a loaded machine mid-way
    // through a full figure-regeneration run.
    if opts.named("batching") {
        let bscale = if quick {
            BatchingScale::quick()
        } else {
            BatchingScale::default_scale()
        };
        let rows = batching::batching(&bscale);
        emit("batching", batching::render(&rows));
        write_bench_json("batching", &batching::to_json(&rows));
        let shed = rows.iter().find(|r| r.stage == "shedder");
        match shed {
            Some(r) if r.speedup() >= 2.0 => {
                eprintln!(
                    "batching: shedder batch path {:.2}x faster (>= 2x)",
                    r.speedup()
                );
            }
            Some(r) => {
                eprintln!(
                    "FAIL: shedder batch path only {:.2}x faster than the row path \
                     (expected >= 2x)",
                    r.speedup()
                );
                std::process::exit(1);
            }
            None => unreachable!("batching always measures the shedder stage"),
        }
    }
    // Explicit-only (not part of `all`), like `batching`: a speedup smoke
    // over micro-benchmark timings that a loaded machine would pollute.
    if opts.named("kernels") {
        let kscale = if quick {
            KernelsScale::quick()
        } else {
            KernelsScale::default_scale()
        };
        let rows = kernels::kernels_race(&kscale);
        emit("kernels", kernels::render(&rows));
        write_bench_json("kernels", &kernels::to_json(&rows));
        let agg = rows.iter().find(|r| r.stage == "aggregate");
        match agg {
            Some(r) if r.speedup() >= 2.0 => {
                eprintln!(
                    "kernels: typed aggregate bank {:.2}x faster (>= 2x) on {} rows",
                    r.speedup(),
                    kscale.rows
                );
            }
            Some(r) => {
                eprintln!(
                    "FAIL: typed aggregate kernels only {:.2}x faster than the Value-arena \
                     path (expected >= 2x)",
                    r.speedup()
                );
                std::process::exit(1);
            }
            None => unreachable!("kernels always measures the aggregate stage"),
        }
        let group = rows.iter().find(|r| r.stage == "group");
        match group {
            Some(r) if r.speedup() >= 2.0 => {
                eprintln!(
                    "kernels: dictionary group-by kernel {:.2}x faster (>= 2x) on {} rows",
                    r.speedup(),
                    kscale.rows
                );
            }
            Some(r) => {
                eprintln!(
                    "FAIL: dictionary group-by kernel only {:.2}x faster than the Value-arena \
                     HashMap path (expected >= 2x)",
                    r.speedup()
                );
                std::process::exit(1);
            }
            None => unreachable!("kernels always measures the group stage"),
        }
    }
    // Explicit-only (not part of `all`), like `scale`: a CI smoke whose
    // fairness-recovery gate exits non-zero. Runs a 512+-node engine
    // scenario wall-clock with a flash-crowd cohort attaching and
    // detaching mid-run, and asserts resident Jain fairness recovers.
    if opts.named("churn") {
        let nodes = nodes_arg.unwrap_or(512) as usize;
        let shards = shards_arg.map(|k| k as usize);
        let secs = secs_arg.unwrap_or(if quick { 2 } else { 4 });
        let outcome = churn::churn(nodes, shards, secs, SEED);
        emit("churn", churn::render(&outcome));
        write_bench_json("churn", &churn::to_json(&outcome));
        let baseline = outcome.phase("baseline").resident_jain;
        let recovery = outcome.phase("recovery").resident_jain;
        if outcome.fairness_recovered() {
            eprintln!(
                "churn: resident Jain recovered to {recovery:.4} \
                 (baseline {baseline:.4}, shed {:.1}%)",
                outcome.shed_fraction * 100.0
            );
        } else {
            eprintln!(
                "FAIL: resident Jain did not recover after the cohort departed \
                 (baseline {baseline:.4}, recovery {recovery:.4}, shed {:.3}) ",
                outcome.shed_fraction
            );
            std::process::exit(1);
        }
    }
    // Explicit-only (not part of `all`), like `churn`: a CI smoke whose
    // parity gate exits non-zero — the declarative frontend must match
    // the Table-1 presets structurally and behaviourally, and a
    // declarative GROUP BY must reach the dictionary kernel on the live
    // engine.
    if opts.named("queries") {
        let secs = secs_arg.unwrap_or(if quick { 2 } else { 4 });
        let outcome = queries::queries(secs, SEED);
        emit("queries", queries::render(&outcome));
        write_bench_json("queries", &queries::to_json(&outcome));
        if let Some(text) = query_arg {
            match queries::run_declarative(text, secs, SEED) {
                Ok(run) => emit("query_adhoc", queries::render_declarative(&run)),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
        if outcome.all_match() {
            eprintln!(
                "queries: all {} templates match under {} policies; GROUP BY \
                 dispatched {} kernel calls",
                outcome.parity.len(),
                outcome.parity.first().map_or(0, |r| r.policies.len()),
                outcome.group_by.kernel_calls
            );
        } else {
            let bad: Vec<&str> = outcome
                .parity
                .iter()
                .filter(|r| !r.matches())
                .map(|r| r.template.as_str())
                .collect();
            eprintln!(
                "FAIL: declarative parity gate (mismatched templates: [{}], group-by \
                 dispatched: {})",
                bad.join(", "),
                outcome.group_by.dispatched()
            );
            std::process::exit(1);
        }
    }
    // Explicit-only (not part of `all`): a CI smoke with a thread-budget
    // assertion that exits non-zero, not an evaluation figure — it must
    // not fail a figure-regeneration run on a machine with a stray thread.
    if opts.named("scale") {
        let nodes = nodes_arg.unwrap_or(1024) as usize;
        let shards = shards_arg.map(|k| k as usize);
        let secs = secs_arg.unwrap_or(if quick { 2 } else { 6 });
        let row = engine_scale::scale(nodes, shards, secs, SEED);
        emit("scale", engine_scale::render(&row));
        if !row.within_budget() {
            eprintln!(
                "FAIL: peak thread count {} exceeds the shards+3 budget of {}",
                row.peak_threads.unwrap_or(0),
                row.thread_budget
            );
            std::process::exit(1);
        }
    }
    // Explicit-only (not part of `all`), like `scale`: a CI smoke with
    // CPU-per-tuple and RSS gates that exit non-zero, measured wall-clock
    // on the full engine — a loaded machine mid-figure-regeneration would
    // pollute it.
    if opts.named("scale-e2e") {
        let sources = sources_arg.unwrap_or(100_000) as usize;
        let shards = shards_arg.map(|k| k as usize);
        let secs = secs_arg.unwrap_or(if quick { 2 } else { 6 });
        let row = scale_e2e::scale_e2e(sources, shards, secs, profile, SEED);
        emit("scale_e2e", scale_e2e::render(&row));
        if !row.profile.is_empty() {
            println!("{}", scale_e2e::render_profile(&row.profile).render());
        }
        write_bench_json("scale", &scale_e2e::to_json(&row));
        let mut failed = false;
        if !row.within_cpu_budget() {
            eprintln!(
                "FAIL: {:.0} CPU ns/tuple exceeds the {:.0} ns ceiling",
                row.cpu_ns_per_tuple(),
                scale_e2e::CPU_NS_PER_TUPLE_CEILING
            );
            failed = true;
        }
        if !row.within_rss_budget() {
            eprintln!(
                "FAIL: peak RSS {} kB exceeds the {} kB budget for {} sources",
                row.peak_rss_kb.unwrap_or(0),
                row.rss_budget_kb(),
                row.sources
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "scale-e2e: {} sources end-to-end at {:.0} CPU ns/tuple \
             (wall {:.0} ns/tuple), peak RSS {} kB, pool reuse {:.0}%",
            row.sources,
            row.cpu_ns_per_tuple(),
            row.wall_ns_per_tuple(),
            row.peak_rss_kb.unwrap_or(0),
            row.pool_reuse_fraction() * 100.0
        );
    }

    // Explicit-only (not part of `all`), like `churn`: a CI smoke whose
    // replay-accuracy and fairness gates exit non-zero. Replays a
    // validated arrival-trace file through the engine under balance-sic.
    if opts.named("trace") {
        let file = opts
            .file
            .clone()
            .unwrap_or_else(|| "traces/worldcup98-diurnal.csv".to_string());
        let secs = secs_arg.unwrap_or(if quick { 3 } else { 8 });
        let data = match themis_workloads::traces::TraceData::load(&file) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        let data = match opts.beat_ms {
            Some(0) => {
                eprintln!("invalid value `0` for --beat-ms=<ms> — the beat must be positive");
                std::process::exit(2);
            }
            Some(ms) => data.with_beat(themis_core::prelude::TimeDelta::from_millis(ms)),
            None => data,
        };
        let mut outcome = trace_fig::trace_replay(std::sync::Arc::new(data), secs, SEED);
        outcome.file = file;
        emit("trace", trace_fig::render(&outcome));
        write_bench_json("trace", &trace_fig::to_json(&outcome));
        let mut failed = false;
        if !outcome.accurate() {
            eprintln!(
                "FAIL: replayed volume off by {:.1}% from the trace-declared expectation \
                 (expected {:.0}, arrived {}, tolerance {:.0}%)",
                outcome.accuracy_error() * 100.0,
                outcome.expected_tuples,
                outcome.arrived_tuples,
                trace_fig::TRACE_ACCURACY_TOLERANCE * 100.0
            );
            failed = true;
        }
        if !outcome.fair() {
            eprintln!(
                "FAIL: Jain {:.4} under the trace shape (floor {}, shed {:.1}%)",
                outcome.jain,
                trace_fig::TRACE_JAIN_FLOOR,
                outcome.shed_fraction * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "trace: `{}` replayed within {:.1}% of declared volume, Jain {:.4}, shed {:.1}%",
            outcome.trace_name,
            outcome.accuracy_error() * 100.0,
            outcome.jain,
            outcome.shed_fraction * 100.0
        );
    }
    // Explicit-only (not part of `all`), like `trace`: a CI smoke whose
    // correlated-fairness gate exits non-zero. Races one shared burst
    // process against the independent-burst control at identical
    // declared demand.
    if opts.named("correlated") {
        let secs = secs_arg.unwrap_or(if quick { 3 } else { 8 });
        let outcome = correlated::correlated(secs, SEED);
        emit("correlated", correlated::render(&outcome));
        write_bench_json("correlated", &correlated::to_json(&outcome));
        let corr = outcome.arm("correlated");
        let indep = outcome.arm("independent");
        if outcome.fair_under_correlation() {
            eprintln!(
                "correlated: Jain {:.4} under simultaneous bursts vs {:.4} independent \
                 (shed {:.1}% vs {:.1}%)",
                corr.jain,
                indep.jain,
                corr.shed_fraction * 100.0,
                indep.shed_fraction * 100.0
            );
        } else {
            eprintln!(
                "FAIL: correlated-burst Jain {:.4} fell more than {} below the \
                 independent control {:.4} (correlated shed {:.1}%)",
                corr.jain,
                correlated::CORRELATED_JAIN_SLACK,
                indep.jain,
                corr.shed_fraction * 100.0
            );
            std::process::exit(1);
        }
    }
    // Explicit-only (not part of `all`), like `churn`: a CI smoke whose
    // durability gate exits non-zero. Kills a shard mid-overload,
    // restores it from checkpoint + WAL tail, and asserts the
    // post-recovery SIC/Jain numbers stay within bounds of an
    // uninterrupted control run with the same seed.
    if opts.named("recovery") {
        let secs = secs_arg.unwrap_or(if quick { 5 } else { 8 });
        let outcome = recovery::recovery(secs, SEED);
        emit("recovery", recovery::render(&outcome));
        write_bench_json("recovery", &recovery::to_json(&outcome));
        if outcome.recovered() {
            eprintln!(
                "recovery: shard {} restored from {} snapshots + {} WAL deltas; \
                 post-recovery SIC error {:.4} (bound {}), Jain diff {:.4} (bound {}), \
                 shed {:.1}%",
                outcome.killed_shard,
                outcome.checkpoint_snapshots,
                outcome.wal_deltas,
                outcome.mean_abs_error,
                recovery::SIC_ERROR_BOUND,
                outcome.jain_diff(),
                recovery::JAIN_DIFF_BOUND,
                outcome.arm("faulted").shed_fraction * 100.0
            );
        } else {
            eprintln!(
                "FAIL: recovery gate (SIC error {:.4} vs bound {}, Jain diff {:.4} vs \
                 bound {}, snapshots {}, deltas {}, shed {:.3}, engine errors {})",
                outcome.mean_abs_error,
                recovery::SIC_ERROR_BOUND,
                outcome.jain_diff(),
                recovery::JAIN_DIFF_BOUND,
                outcome.checkpoint_snapshots,
                outcome.wal_deltas,
                outcome.arm("faulted").shed_fraction,
                outcome.arms.iter().map(|a| a.engine_errors).sum::<usize>()
            );
            std::process::exit(1);
        }
    }
    // Explicit-only (not part of `all`), like `trace`: a CI smoke whose
    // strategic-advantage gate exits non-zero. Runs the tick-phase-locked
    // attacker under every registered policy; only the balance-sic family
    // is asserted, the baselines' leak is documented.
    if opts.named("adversarial") {
        let secs = secs_arg.unwrap_or(if quick { 2 } else { 4 });
        let outcome = adversarial::adversarial(secs, SEED);
        emit("adversarial", adversarial::render(&outcome));
        write_bench_json("adversarial", &adversarial::to_json(&outcome));
        if outcome.sic_policies_hold() {
            for r in outcome.rows.iter().filter(|r| r.sic_aware) {
                eprintln!(
                    "adversarial: {} holds the strategic source to {:+.1}% \
                     (epsilon {:.0}%, shed {:.1}%)",
                    r.policy,
                    r.advantage() * 100.0,
                    adversarial::ADVERSARIAL_EPSILON * 100.0,
                    r.shed_fraction * 100.0
                );
            }
        } else {
            for r in outcome
                .rows
                .iter()
                .filter(|r| r.sic_aware && !r.within_epsilon())
            {
                eprintln!(
                    "FAIL: {} let the strategic source take {:+.1}% over its honest peers \
                     (epsilon {:.0}%, shed {:.1}%)",
                    r.policy,
                    r.advantage() * 100.0,
                    adversarial::ADVERSARIAL_EPSILON * 100.0,
                    r.shed_fraction * 100.0
                );
            }
            std::process::exit(1);
        }
    }

    // Explicit-only (not part of `all`), like `recovery`: a CI smoke
    // whose multi-process parity gate exits non-zero. Forks
    // `--sources-procs` source subprocesses feeding the engine's TCP
    // ingest listener over loopback and asserts every policy's federated
    // SIC/Jain lands within 2% of the in-process control.
    if opts.named("federated") {
        let procs = opts.sources_procs.unwrap_or(4) as usize;
        let secs = secs_arg.unwrap_or(if quick { 3 } else { 5 });
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("federated: cannot locate own binary to fork pumps: {e}");
                std::process::exit(1);
            }
        };
        let outcome = federated_fig::federated(&policies, procs.max(1), secs, SEED, &exe);
        emit("federated", federated_fig::render(&outcome));
        write_bench_json("federated", &federated_fig::to_json(&outcome));
        if outcome.passed() {
            eprintln!(
                "federated: {} policies within {:.0}% SIC / {:.2} Jain of in-process \
                 parity across {} source processes",
                outcome.arms.len(),
                federated_fig::SIC_REL_BOUND * 100.0,
                federated_fig::JAIN_ABS_BOUND,
                outcome.sources_procs
            );
        } else {
            for a in outcome.arms.iter().filter(|a| !a.within_bounds()) {
                eprintln!(
                    "FAIL: {}: sic {:.4} vs {:.4} (rel {:.2}%), jain {:.4} vs {:.4} \
                     (diff {:.4}), wire batches {}, engine errors {}",
                    a.policy,
                    a.federated_sic,
                    a.control_sic,
                    a.sic_rel_diff() * 100.0,
                    a.federated_jain,
                    a.control_jain,
                    a.jain_diff(),
                    a.remote_batches,
                    a.engine_errors
                );
            }
            std::process::exit(1);
        }
    }

    eprintln!("total time: {:.1}s", t0.elapsed().as_secs_f64());
}
