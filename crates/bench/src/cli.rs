//! Table-driven CLI parsing for the `experiments` binary.
//!
//! Every flag declares which experiments it applies to; a flag passed
//! alongside experiments none of which accept it is an error (exit 2 in
//! the binary), **listing the valid flags** for the selection — the PR 7
//! `--policy=<unknown>` convention extended to the whole command line.
//! Previously `experiments churn --sources=5` parsed, silently ignored
//! `--sources` and ran with the default; now it is rejected.

/// Every experiment the binary knows, in help order.
pub const EXPERIMENTS: &[&str] = &[
    "all",
    "table1",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "related",
    "overhead",
    "ablation",
    "policies",
    "dynamics",
    "scale",
    "scale-e2e",
    "batching",
    "kernels",
    "churn",
    "queries",
    "trace",
    "correlated",
    "adversarial",
    "recovery",
    "federated",
];

/// The experiments `all` expands to. The rest are explicit-only CI
/// smokes/gates: their exit codes or machine-sensitive timings must not
/// fail (or be polluted by) a full figure-regeneration run.
const ALL_MEMBERS: &[&str] = &[
    "table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "related", "overhead", "ablation", "policies", "dynamics",
];

/// Which experiments accept a flag.
enum Applies {
    /// Any selection.
    Global,
    /// Only these experiments.
    To(&'static [&'static str]),
}

struct FlagSpec {
    /// Flag name; a trailing `=` marks a value flag matched by prefix.
    name: &'static str,
    /// Value placeholder for usage strings (`<n>`, `<path>`, …).
    placeholder: &'static str,
    applies: Applies,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--quick",
        placeholder: "",
        applies: Applies::Global,
    },
    FlagSpec {
        name: "--profile",
        placeholder: "",
        applies: Applies::To(&["scale-e2e"]),
    },
    FlagSpec {
        name: "--policy=",
        placeholder: "<name>",
        applies: Applies::To(&["policies", "federated"]),
    },
    FlagSpec {
        name: "--query=",
        placeholder: "'<text>'",
        applies: Applies::To(&["queries"]),
    },
    FlagSpec {
        name: "--nodes=",
        placeholder: "<n>",
        applies: Applies::To(&["churn", "scale"]),
    },
    FlagSpec {
        name: "--shards=",
        placeholder: "<k>",
        applies: Applies::To(&["churn", "scale", "scale-e2e"]),
    },
    FlagSpec {
        name: "--secs=",
        placeholder: "<s>",
        applies: Applies::To(&[
            "churn",
            "queries",
            "scale",
            "scale-e2e",
            "trace",
            "correlated",
            "adversarial",
            "recovery",
            "federated",
        ]),
    },
    FlagSpec {
        name: "--sources-procs=",
        placeholder: "<n>",
        applies: Applies::To(&["federated"]),
    },
    FlagSpec {
        name: "--sources=",
        placeholder: "<n>",
        applies: Applies::To(&["scale-e2e"]),
    },
    FlagSpec {
        name: "--file=",
        placeholder: "<path>",
        applies: Applies::To(&["trace"]),
    },
    FlagSpec {
        name: "--beat-ms=",
        placeholder: "<ms>",
        applies: Applies::To(&["trace"]),
    },
];

/// Parsed command line of the `experiments` binary.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Options {
    /// The selected experiments (defaults to `["all"]`).
    pub what: Vec<String>,
    /// `--quick`: reduced bench scale for smoke runs.
    pub quick: bool,
    /// `--profile`: per-thread CPU table (scale-e2e).
    pub profile: bool,
    /// `--policy=<name>` for the policies parity experiment.
    pub policy: Option<String>,
    /// `--query='<text>'` ad-hoc declarative query (queries).
    pub query: Option<String>,
    /// `--nodes=<n>` for churn/scale.
    pub nodes: Option<u64>,
    /// `--shards=<k>` for churn/scale/scale-e2e.
    pub shards: Option<u64>,
    /// `--secs=<s>` run length for the engine experiments.
    pub secs: Option<u64>,
    /// `--sources=<n>` for scale-e2e.
    pub sources: Option<u64>,
    /// `--sources-procs=<n>` source processes for the federated gate.
    pub sources_procs: Option<u64>,
    /// `--file=<path>` trace file for the trace experiment.
    pub file: Option<String>,
    /// `--beat-ms=<ms>` trace replay-beat rescale for the trace experiment.
    pub beat_ms: Option<u64>,
}

impl Options {
    /// True when `name` should run: named explicitly, or a member of an
    /// explicit (or defaulted) `all`.
    pub fn selected(&self, name: &str) -> bool {
        self.what.iter().any(|w| w == name)
            || (self.what.iter().any(|w| w == "all") && ALL_MEMBERS.contains(&name))
    }

    /// True when `name` was named explicitly on the command line (how
    /// the explicit-only gates are requested).
    pub fn named(&self, name: &str) -> bool {
        self.what.iter().any(|w| w == name)
    }
}

fn usage_of(spec: &FlagSpec) -> String {
    format!("{}{}", spec.name, spec.placeholder)
}

/// The flags valid for a selection, as a usage string for error messages.
fn valid_flags_for(what: &[String]) -> String {
    FLAGS
        .iter()
        .filter(|s| applies(s, what))
        .map(usage_of)
        .collect::<Vec<_>>()
        .join(", ")
}

fn applies(spec: &FlagSpec, what: &[String]) -> bool {
    match spec.applies {
        Applies::Global => true,
        Applies::To(experiments) => what.iter().any(|w| {
            experiments.contains(&w.as_str())
                || (w == "all" && experiments.iter().any(|e| ALL_MEMBERS.contains(e)))
        }),
    }
}

/// Parses the argument list (without the program name). Errors are
/// ready-to-print messages; the binary exits 2 on them.
pub fn parse<I, S>(args: I) -> Result<Options, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|a| a.as_ref().to_string()).collect();
    let mut what: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if let Some(unknown) = what.iter().find(|w| !EXPERIMENTS.contains(&w.as_str())) {
        return Err(format!(
            "unknown experiment `{unknown}` (expected one of: {})",
            EXPERIMENTS.join(", ")
        ));
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    let mut opts = Options {
        what: what.clone(),
        ..Options::default()
    };
    for arg in args.iter().filter(|a| a.starts_with("--")) {
        let spec = FLAGS.iter().find(|s| {
            if s.name.ends_with('=') {
                arg.starts_with(s.name)
            } else {
                arg == s.name
            }
        });
        let Some(spec) = spec else {
            return Err(format!(
                "unknown option `{arg}` (valid flags for [{}]: {})",
                what.join(", "),
                valid_flags_for(&what)
            ));
        };
        if !applies(spec, &what) {
            let Applies::To(experiments) = spec.applies else {
                unreachable!("global flags always apply");
            };
            return Err(format!(
                "`{}` only applies to [{}], none of which is selected by [{}] \
                 (valid flags for this selection: {})",
                usage_of(spec),
                experiments.join(", "),
                what.join(", "),
                valid_flags_for(&what)
            ));
        }
        let value = || arg[spec.name.len()..].to_string();
        let uint = || -> Result<u64, String> {
            value()
                .parse()
                .map_err(|_| format!("invalid value `{}` for {}", value(), usage_of(spec)))
        };
        match spec.name {
            "--quick" => opts.quick = true,
            "--profile" => opts.profile = true,
            "--policy=" => opts.policy = Some(value()),
            "--query=" => opts.query = Some(value()),
            "--nodes=" => opts.nodes = Some(uint()?),
            "--shards=" => opts.shards = Some(uint()?),
            "--secs=" => opts.secs = Some(uint()?),
            "--sources=" => opts.sources = Some(uint()?),
            "--sources-procs=" => opts.sources_procs = Some(uint()?),
            "--file=" => opts.file = Some(value()),
            "--beat-ms=" => opts.beat_ms = Some(uint()?),
            other => unreachable!("flag {other} missing from the assignment match"),
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Options, String> {
        parse(args.iter().copied())
    }

    #[test]
    fn defaults_to_all() {
        let o = parse_strs(&[]).unwrap();
        assert_eq!(o.what, vec!["all"]);
        assert!(o.selected("fig8") && o.selected("policies"));
        assert!(!o.selected("churn"), "explicit-only gates stay out of all");
    }

    #[test]
    fn churn_rejects_inapplicable_sources_flag() {
        let err = parse_strs(&["churn", "--sources=5"]).unwrap_err();
        assert!(err.contains("--sources=<n>"), "{err}");
        assert!(err.contains("only applies to [scale-e2e]"), "{err}");
        // The message lists churn's actual flags.
        assert!(err.contains("--nodes=<n>"), "{err}");
        assert!(err.contains("--secs=<s>"), "{err}");
        assert!(!err.contains("--file"), "{err}");
    }

    #[test]
    fn scale_e2e_rejects_unknown_and_inapplicable_flags() {
        let err = parse_strs(&["scale-e2e", "--bogus"]).unwrap_err();
        assert!(err.contains("unknown option `--bogus`"), "{err}");
        assert!(err.contains("--sources=<n>"), "valid flags listed: {err}");
        let err = parse_strs(&["scale-e2e", "--nodes=4"]).unwrap_err();
        assert!(err.contains("--nodes=<n>"), "{err}");
        assert!(err.contains("churn, scale"), "{err}");
    }

    #[test]
    fn trace_takes_file_beat_and_secs() {
        let o = parse_strs(&["trace", "--file=traces/x.csv", "--beat-ms=100", "--secs=3"]).unwrap();
        assert_eq!(o.file.as_deref(), Some("traces/x.csv"));
        assert_eq!(o.beat_ms, Some(100));
        assert_eq!(o.secs, Some(3));
        // But file/beat are trace-only.
        assert!(parse_strs(&["correlated", "--file=x.csv"]).is_err());
        assert!(parse_strs(&["adversarial", "--beat-ms=5"]).is_err());
        assert!(parse_strs(&["correlated", "--secs=2"]).is_ok());
        assert!(parse_strs(&["adversarial", "--secs=2"]).is_ok());
    }

    #[test]
    fn policy_applies_to_policies_and_through_all() {
        assert!(parse_strs(&["policies", "--policy=fifo"]).is_ok());
        assert!(
            parse_strs(&["--policy=fifo"]).is_ok(),
            "all includes policies"
        );
        let err = parse_strs(&["churn", "--policy=fifo"]).unwrap_err();
        assert!(
            err.contains("only applies to [policies, federated]"),
            "{err}"
        );
    }

    #[test]
    fn bad_numbers_are_rejected() {
        let err = parse_strs(&["churn", "--secs=abc"]).unwrap_err();
        assert!(err.contains("invalid value `abc` for --secs=<s>"), "{err}");
    }

    #[test]
    fn unknown_experiment_lists_the_menu() {
        let err = parse_strs(&["chrun"]).unwrap_err();
        assert!(err.contains("unknown experiment `chrun`"), "{err}");
        assert!(err.contains("adversarial"), "{err}");
    }

    #[test]
    fn recovery_is_an_explicit_only_gate_taking_secs() {
        let o = parse_strs(&["recovery", "--secs=5", "--quick"]).unwrap();
        assert!(o.named("recovery"));
        assert_eq!(o.secs, Some(5));
        assert!(o.quick);
        // Explicit-only: `all` must not pull the kill/restore gate in.
        let all = parse_strs(&[]).unwrap();
        assert!(!all.selected("recovery"));
        // The strict flag table still applies.
        let err = parse_strs(&["recovery", "--sources=5"]).unwrap_err();
        assert!(err.contains("only applies to [scale-e2e]"), "{err}");
        assert!(err.contains("--secs=<s>"), "{err}");
    }

    #[test]
    fn federated_is_an_explicit_only_gate_with_its_own_flags() {
        let o = parse_strs(&[
            "federated",
            "--sources-procs=4",
            "--policy=fifo",
            "--secs=6",
            "--quick",
        ])
        .unwrap();
        assert!(o.named("federated"));
        assert_eq!(o.sources_procs, Some(4));
        assert_eq!(o.policy.as_deref(), Some("fifo"));
        assert_eq!(o.secs, Some(6));
        assert!(o.quick);
        // Explicit-only: `all` must not fork subprocesses.
        let all = parse_strs(&[]).unwrap();
        assert!(!all.selected("federated"));
        // --sources-procs is federated-only; the strict table rejects it
        // elsewhere and lists federated's real flag set in the error.
        let err = parse_strs(&["policies", "--sources-procs=4"]).unwrap_err();
        assert!(err.contains("only applies to [federated]"), "{err}");
        let err = parse_strs(&["federated", "--nodes=4"]).unwrap_err();
        assert!(err.contains("--sources-procs=<n>"), "{err}");
        assert!(err.contains("--secs=<s>"), "{err}");
    }

    #[test]
    fn multiple_experiments_union_their_flags() {
        let o = parse_strs(&["churn", "scale-e2e", "--sources=9", "--nodes=8"]).unwrap();
        assert_eq!((o.sources, o.nodes), (Some(9), Some(8)));
        assert!(o.named("churn") && o.named("scale-e2e"));
        assert!(!o.named("scale"));
    }
}
