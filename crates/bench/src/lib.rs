//! # themis-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! THEMIS evaluation (§7). See EXPERIMENTS.md for the paper-vs-measured
//! record and `src/bin/experiments.rs` for the CLI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod figures;
pub mod scenarios;
pub mod table;
