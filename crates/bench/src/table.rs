//! Minimal text-table and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a title.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV under `dir/<name>.csv`.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{name}.csv")), s)
    }
}

/// Formats a float with 4 decimals.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = TextTable::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), f(0.5)]);
        t.row(vec!["22".into(), f(1.0)]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("0.5000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = TextTable::new("csv", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("themis_table_test");
        t.write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
    }
}
