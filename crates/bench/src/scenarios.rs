//! Shared scenario constructors for the evaluation experiments.
//!
//! The simulator reproduces the paper's *shapes*, not its absolute tuple
//! volumes: source rates and query counts are scaled down so every figure
//! regenerates in minutes on a laptop, while overload factors (demand over
//! capacity) match the paper's operating points. `Scale` controls the
//! knob: `default` for the experiments binary, `quick` for benches and
//! integration tests.

use themis_core::prelude::*;
use themis_query::prelude::*;
use themis_workloads::prelude::*;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Per-source steady rate (the paper's Emulab profile: 150 t/s).
    pub tuples_per_sec: u32,
    /// Batches per second per source (paper: 3).
    pub batches_per_sec: u32,
    /// Measured duration.
    pub duration: TimeDelta,
    /// Warm-up excluded from metrics (must exceed the 10 s STW).
    pub warmup: TimeDelta,
    /// Multiplier on query counts (1.0 = the scaled-down defaults).
    pub query_factor: f64,
}

impl Scale {
    /// Default scale used by the `experiments` binary.
    pub fn default_scale() -> Self {
        Scale {
            tuples_per_sec: 10,
            batches_per_sec: 2,
            duration: TimeDelta::from_secs(40),
            warmup: TimeDelta::from_secs(14),
            query_factor: 1.0,
        }
    }

    /// Reduced scale for Criterion benches and integration tests.
    pub fn quick() -> Self {
        Scale {
            tuples_per_sec: 8,
            batches_per_sec: 2,
            duration: TimeDelta::from_secs(16),
            warmup: TimeDelta::from_secs(11),
            query_factor: 0.34,
        }
    }

    /// Scales a query count.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.query_factor).round() as usize).max(1)
    }

    /// The source profile at this scale.
    pub fn profile(&self, dataset: Dataset) -> SourceProfile {
        SourceProfile::steady(self.tuples_per_sec, self.batches_per_sec, dataset)
    }
}

/// The complex-workload template rotation used across §7.2-§7.4: equal
/// parts AVG-all, TOP-5 and COV, with the given fragment count.
pub fn complex_mix(fragments: usize, index: usize) -> Template {
    match index % 3 {
        0 => Template::AvgAll { fragments },
        1 => Template::Top5 { fragments },
        _ => Template::Cov { fragments },
    }
}

/// Average sources per query of the complex mix.
pub fn mix_sources_per_fragment() -> f64 {
    (10.0 + 20.0 + 2.0) / 3.0
}

/// Adds `count` complex-mix queries with `fragments` fragments each.
pub fn add_complex_mix(
    mut b: ScenarioBuilder,
    count: usize,
    fragments: usize,
    profile: SourceProfile,
) -> ScenarioBuilder {
    for i in 0..count {
        b = b.add_queries(complex_mix(fragments, i), 1, profile);
    }
    b
}

/// Adds complex-mix queries with fragment counts cycling over `frag_choices`.
pub fn add_complex_mix_varied(
    mut b: ScenarioBuilder,
    count: usize,
    frag_choices: &[usize],
    profile: SourceProfile,
) -> ScenarioBuilder {
    for i in 0..count {
        let f = frag_choices[i % frag_choices.len()];
        b = b.add_queries(complex_mix(f, i), 1, profile);
    }
    b
}

/// Picks a node capacity that yields the target mean overload factor for
/// the given per-node demand.
pub fn capacity_for_overload(demand_per_node_tps: f64, overload: f64) -> u32 {
    ((demand_per_node_tps / overload.max(0.01)).round() as u32).max(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_math() {
        let s = Scale::default_scale();
        assert_eq!(s.n(90), 90);
        let q = Scale::quick();
        assert_eq!(q.n(90), 31);
        assert!(q.n(1) >= 1);
    }

    #[test]
    fn mix_rotates_templates() {
        assert_eq!(complex_mix(2, 0).name(), "AVG-all");
        assert_eq!(complex_mix(2, 1).name(), "TOP-5");
        assert_eq!(complex_mix(2, 2).name(), "COV");
        assert_eq!(complex_mix(2, 3).name(), "AVG-all");
    }

    #[test]
    fn mix_builder_produces_uniform_fragments() {
        let s = add_complex_mix(
            ScenarioBuilder::new("t", 0).nodes(6),
            6,
            3,
            Scale::quick().profile(Dataset::Uniform),
        )
        .build()
        .unwrap();
        assert_eq!(s.queries.len(), 6);
        assert!(s.queries.iter().all(|q| q.n_fragments() == 3));
        // 2 x AVG-all, 2 x TOP-5, 2 x COV.
        let names: Vec<&str> = s.queries.iter().map(|q| q.template.as_str()).collect();
        assert_eq!(names.iter().filter(|n| **n == "TOP-5").count(), 2);
    }

    #[test]
    fn varied_builder_cycles_fragments() {
        let s = add_complex_mix_varied(
            ScenarioBuilder::new("t", 0).nodes(6),
            6,
            &[1, 2, 3],
            Scale::quick().profile(Dataset::Uniform),
        )
        .build()
        .unwrap();
        let frags: Vec<usize> = s.queries.iter().map(|q| q.n_fragments()).collect();
        assert_eq!(frags, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn capacity_helper() {
        assert_eq!(capacity_for_overload(3000.0, 3.0), 1000);
        assert!(capacity_for_overload(10.0, 100.0) >= 10);
    }
}
