//! Criterion bench: the typed column kernels vs `Value`-arena iteration
//! on the aggregate, covariance and filter stages.
//!
//! The same passes back the `experiments kernels` CLI run (which also
//! writes `results/BENCH_kernels.json` and asserts the >= 2x aggregate
//! speedup on a 1M-row batch); this harness exists so the comparison is
//! measurable via plain `cargo bench` too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use themis_bench::figures::kernels::{kernels_race, KernelsScale};

fn bench_kernels(c: &mut Criterion) {
    // One reduced race per harness run: Criterion's shim prints means,
    // and the race itself already times both paths per stage.
    let scale = KernelsScale {
        rows: 100_000,
        iters: 3,
    };
    let label = format!("{}rows", scale.rows);
    let mut group = c.benchmark_group("typed_kernels");
    group.bench_with_input(BenchmarkId::new("race", &label), &scale, |b, s| {
        b.iter(|| black_box(kernels_race(s)));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
