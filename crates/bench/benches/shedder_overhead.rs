//! §7.6 micro-benchmark: execution time of one `selectTuplesToKeep`
//! invocation, BALANCE-SIC vs the random baseline, across buffer sizes.
//!
//! The paper reports 0.088 ms (fair) vs 0.079 ms (random) per batch on the
//! mixed workload — an 11% overhead. The interesting output here is the
//! *ratio* between the two policies at comparable buffer shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use themis_core::prelude::*;

/// Builds a realistic buffer snapshot: `queries` queries, each with
/// `batches` buffered batches of `tuples` tuples and slightly different
/// SIC values (as produced by Eq. 1 under different source rates).
fn snapshot(queries: usize, batches: usize, tuples: usize) -> Vec<QueryBufferState> {
    let mut idx = 0;
    (0..queries)
        .map(|q| {
            let per_tuple = 1.0 / (200.0 + 10.0 * q as f64);
            let batch_list = (0..batches)
                .map(|b| {
                    let cb = CandidateBatch {
                        buffer_index: idx,
                        sic: Sic(per_tuple * tuples as f64 * (1.0 + 0.01 * b as f64)),
                        tuples,
                        created: Timestamp(idx as u64 * 100),
                    };
                    idx += 1;
                    cb
                })
                .collect();
            QueryBufferState {
                query: QueryId(q as u32),
                base_sic: Sic(0.001 * q as f64),
                batches: batch_list,
            }
        })
        .collect()
}

fn bench_shedders(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_shedder");
    for &(queries, batches) in &[(10usize, 8usize), (50, 8), (200, 8), (50, 40)] {
        let states = snapshot(queries, batches, 50);
        let total: usize = states.iter().map(|s| s.buffered_tuples()).sum();
        let capacity = total / 3; // heavy overload, like the paper's runs
        group.bench_with_input(
            BenchmarkId::new("balance-sic", format!("{queries}q x {batches}b")),
            &states,
            |b, states| {
                let mut shedder = BalanceSicShedder::new(7);
                b.iter(|| black_box(shedder.select_to_keep(capacity, states)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random", format!("{queries}q x {batches}b")),
            &states,
            |b, states| {
                let mut shedder = RandomShedder::new(7);
                b.iter(|| black_box(shedder.select_to_keep(capacity, states)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shedders);
criterion_main!(benches);
