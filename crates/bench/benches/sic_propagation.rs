//! Micro-benchmarks of the SIC machinery on the hot path: Eq.-1 stamping
//! at arrival, Eq.-3 propagation through windowed operators, and the
//! sliding-STW result tracker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use themis_core::prelude::*;
use themis_operators::prelude::*;

fn bench_source_stamping(c: &mut Criterion) {
    c.bench_function("sic/stamp_source_batch_80t", |b| {
        let mut assigner = SourceSicAssigner::new(StwConfig::PAPER_DEFAULT, 10);
        let mut t = 0u64;
        b.iter(|| {
            t += 200_000;
            let now = Timestamp(t);
            let tuples: Vec<Tuple> = (0..80)
                .map(|i| Tuple::measurement(now, Sic::ZERO, i as f64))
                .collect();
            let mut batch = Batch::from_source(QueryId(0), SourceId(0), now, tuples);
            assigner.stamp(now, &mut batch);
            black_box(batch.sic())
        });
    });
}

fn bench_operator_pipeline(c: &mut Criterion) {
    c.bench_function("sic/avg_window_1000t", |b| {
        b.iter(|| {
            let mut op = OperatorSpec::with_grace(
                WindowSpec::tumbling(TimeDelta::from_secs(1)),
                LogicSpec::Avg { field: 0 },
                TimeDelta::ZERO,
            )
            .build();
            let tuples: Vec<Tuple> = (0..1000)
                .map(|i| Tuple::measurement(Timestamp(500_000), Sic(0.001), i as f64))
                .collect();
            op.feed(0, tuples, Timestamp(500_000));
            black_box(op.tick(Timestamp::from_secs(1)))
        });
    });
    c.bench_function("sic/join_window_2x200t", |b| {
        b.iter(|| {
            let mut op = OperatorSpec::with_grace(
                WindowSpec::tumbling(TimeDelta::from_secs(1)),
                LogicSpec::Join {
                    left_key: 0,
                    right_key: 0,
                },
                TimeDelta::ZERO,
            )
            .build();
            let row = |id: i64, v: f64| {
                Tuple::new(
                    Timestamp(500_000),
                    Sic(0.001),
                    vec![Value::I64(id), Value::F64(v)],
                )
            };
            let left: Vec<Tuple> = (0..200).map(|i| row(i % 20, i as f64)).collect();
            let right: Vec<Tuple> = (0..200).map(|i| row(i % 20, i as f64)).collect();
            op.feed(0, left, Timestamp(500_000));
            op.feed(1, right, Timestamp(500_000));
            black_box(op.tick(Timestamp::from_secs(1)))
        });
    });
    c.bench_function("sic/topk_window_500t", |b| {
        b.iter(|| {
            let mut op = OperatorSpec::with_grace(
                WindowSpec::tumbling(TimeDelta::from_secs(1)),
                LogicSpec::TopK {
                    k: 5,
                    id_field: 0,
                    value_field: 1,
                },
                TimeDelta::ZERO,
            )
            .build();
            let tuples: Vec<Tuple> = (0..500)
                .map(|i| {
                    Tuple::new(
                        Timestamp(500_000),
                        Sic(0.002),
                        vec![Value::I64(i % 50), Value::F64((i * 37 % 101) as f64)],
                    )
                })
                .collect();
            op.feed(0, tuples, Timestamp(500_000));
            black_box(op.tick(Timestamp::from_secs(1)))
        });
    });
}

fn bench_result_tracker(c: &mut Criterion) {
    c.bench_function("sic/result_tracker_record_and_read", |b| {
        let mut tracker = ResultSicTracker::new(StwConfig::PAPER_DEFAULT);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            let now = Timestamp(t);
            for q in 0..100u32 {
                tracker.record(now, QueryId(q), Sic(0.1));
            }
            black_box(tracker.query_sic(now, QueryId(50)))
        });
    });
}

criterion_group!(
    benches,
    bench_source_stamping,
    bench_operator_pipeline,
    bench_result_tracker
);
criterion_main!(benches);
