//! Criterion bench: the shedder hot loop and a join/aggregate pipeline,
//! old row representation (`Vec<Tuple>`) vs the live columnar batch path.
//!
//! The same iterations back the `experiments batching` CLI run (which
//! also writes `results/BENCH_batching.json`); this harness exists so the
//! comparison is measurable via plain `cargo bench` too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use themis_bench::figures::batching::{
    pipeline_iteration_batch, pipeline_iteration_row, shed_iteration_batch, shed_iteration_row,
    BatchingScale,
};

fn bench_batching(c: &mut Criterion) {
    let scale = BatchingScale::quick();
    let label = format!(
        "{}q x {}b x {}t",
        scale.queries, scale.batches_per_query, scale.tuples_per_batch
    );
    let mut group = c.benchmark_group("batching_shedder");
    group.bench_with_input(BenchmarkId::new("row", &label), &scale, |b, s| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(shed_iteration_row(s, seed))
        });
    });
    group.bench_with_input(BenchmarkId::new("batch", &label), &scale, |b, s| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(shed_iteration_batch(s, seed))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("batching_pipeline");
    group.bench_with_input(BenchmarkId::new("row", &label), &scale, |b, s| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(pipeline_iteration_row(s, seed))
        });
    });
    group.bench_with_input(BenchmarkId::new("batch", &label), &scale, |b, s| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(pipeline_iteration_batch(s, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
