//! Criterion bench: WAL append (framed encode) and replay (checksummed
//! decode) throughput.
//!
//! The durability layer sits on the shard hot loop — every coordinator
//! SIC update appends one framed delta, and each checkpoint encodes the
//! hosted nodes' SIC tables plus their open window panes — so the codec
//! must stay cheap relative to the work it journals. This harness times
//! the pure codec (no filesystem): a 10k-delta tail append and its
//! tolerant replay, plus a node-snapshot round-trip carrying columnar
//! pane batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use themis_core::prelude::*;
use themis_core::wal::{decode_records_tolerant, encode_record};

const DELTAS: usize = 10_000;
const PANES: usize = 8;
const ROWS_PER_PANE: usize = 1024;

fn delta_records() -> Vec<WalRecord> {
    (0..DELTAS)
        .map(|i| {
            WalRecord::SicDelta(SicDelta {
                node: i % 64,
                query: QueryId((i % 128) as u32),
                sic: Sic((i % 100) as f64 / 100.0),
            })
        })
        .collect()
}

fn snapshot_record() -> WalRecord {
    let panes = (0..PANES)
        .map(|p| {
            let mut batch = TupleBatch::with_capacity(1, ROWS_PER_PANE);
            for r in 0..ROWS_PER_PANE {
                batch.push_row(
                    Timestamp((p * ROWS_PER_PANE + r) as u64),
                    Sic(0.01),
                    &[Value::F64(r as f64)],
                );
            }
            PaneRecord {
                query: QueryId(p as u32),
                fragment: 0,
                op: 0,
                port: 0,
                key: PaneKey::Time(p as u64),
                batch,
            }
        })
        .collect();
    WalRecord::Snapshot(NodeSnapshot {
        node: 0,
        sic: (0..PANES).map(|p| (QueryId(p as u32), Sic(0.5))).collect(),
        panes,
    })
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        encode_record(r, &mut buf);
    }
    buf
}

fn bench_wal(c: &mut Criterion) {
    let deltas = delta_records();
    let delta_stream = encode_all(&deltas);
    let snapshot = vec![snapshot_record()];
    let snapshot_stream = encode_all(&snapshot);

    let mut group = c.benchmark_group("wal");
    group.bench_with_input(
        BenchmarkId::new("append", format!("{DELTAS}deltas")),
        &deltas,
        |b, recs| {
            b.iter(|| black_box(encode_all(recs)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("replay", format!("{DELTAS}deltas")),
        &delta_stream,
        |b, buf| {
            b.iter(|| black_box(decode_records_tolerant(buf).expect("valid stream")));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("checkpoint", format!("{PANES}panes_x{ROWS_PER_PANE}rows")),
        &snapshot,
        |b, recs| {
            b.iter(|| black_box(encode_all(recs)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("restore", format!("{PANES}panes_x{ROWS_PER_PANE}rows")),
        &snapshot_stream,
        |b, buf| {
            b.iter(|| black_box(decode_records_tolerant(buf).expect("valid stream")));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
