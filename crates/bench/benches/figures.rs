//! One Criterion benchmark per evaluation figure/table: each runs the
//! figure's experiment at `Scale::quick()` (the same code path the
//! `experiments` binary uses at full scale), so `cargo bench` regenerates
//! every figure end to end and tracks the simulator's performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use themis_bench::figures::correlation::{correlation, CorrelationQuery};
use themis_bench::figures::fairness::{fig10, fig11, fig8, fig9};
use themis_bench::figures::related::related_work;
use themis_bench::figures::scalability::{fig12, fig13, fig14};
use themis_bench::figures::{ablation, tables};
use themis_bench::scenarios::Scale;

const SEED: u64 = 20160626;

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    group.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
    group.bench_function("fig06_sic_correlation_avg", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(correlation(CorrelationQuery::Avg, &scale, SEED)));
    });
    group.bench_function("fig07_sic_correlation_top5", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(correlation(CorrelationQuery::Top5, &scale, SEED)));
    });
    group.bench_function("fig08_single_node_fairness", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig8(&scale, SEED)));
    });
    group.bench_function("fig09_shedding_interval", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig9(&scale, SEED)));
    });
    group.bench_function("fig10_balance_vs_random", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig10(&scale, SEED)));
    });
    group.bench_function("fig11_multifragmentation", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig11(&scale, SEED)));
    });
    group.bench_function("fig12_scaling_nodes", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig12(&scale, SEED)));
    });
    group.bench_function("fig13_scaling_queries", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig13(&scale, SEED)));
    });
    group.bench_function("fig14_bursty_wan", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(fig14(&scale, SEED)));
    });
    group.bench_function("related_work_75", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(related_work(&scale, SEED)));
    });
    group.bench_function("ablation_update_sic", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(ablation::update_sic_ablation(&scale, SEED)));
    });
    group.bench_function("ablation_batch_order", |b| {
        let scale = Scale::quick();
        b.iter(|| black_box(ablation::batch_order_ablation(&scale, SEED)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure_benches
}
criterion_main!(benches);
