//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a small
//! mean-of-N wall-clock timing harness that prints one line per benchmark.
//!
//! Bench binaries only run measurements when invoked with `--bench` (which
//! `cargo bench` passes to `harness = false` targets); under `cargo test`
//! they exit immediately so the tier-1 suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works as upstream.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Identifier for a parameterised benchmark (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing result of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub best: Duration,
    /// Number of timed iterations.
    pub samples: usize,
}

/// Per-benchmark timing state handed to the bench closure.
pub struct Bencher {
    samples: usize,
    warmup: usize,
    last: Option<Summary>,
}

impl Bencher {
    /// Times `f` over warm-up plus sample iterations; the result is
    /// printed by the harness once the bench closure returns.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.last = Some(Summary {
            mean: total / self.samples as u32,
            best,
            samples: self.samples,
        });
    }

    /// The most recent measurement, if `iter` ran.
    pub fn summary(&self) -> Option<Summary> {
        self.last
    }
}

fn run_one(group: Option<&str>, id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        samples,
        warmup: (samples / 5).max(1),
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(s) => println!(
            "bench {full:<60} mean {:>12.3?}  best {:>12.3?}  ({} samples)",
            s.mean, s.best, s.samples
        ),
        None => println!("bench {full:<60} (no b.iter call)"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), self.sample_size, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.sample_size, |b| f(b));
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// True when the binary was invoked by `cargo bench` (which passes
/// `--bench` to `harness = false` targets).
pub fn invoked_as_bench() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::invoked_as_bench() {
                println!("criterion shim: not invoked via `cargo bench`; skipping measurements");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
            assert_eq!(b.summary().unwrap().samples, 3);
        });
        group.bench_with_input(BenchmarkId::new("param", "n=4"), &4u64, |b, &n| {
            b.iter(|| (1..=n).product::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
        c.bench_function("top-level", |b| {
            b.iter(|| 1 + 1);
            assert!(b.summary().is_some());
        });
    }
}
