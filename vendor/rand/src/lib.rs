//! Offline shim for the `rand` crate (0.8 API surface).
//!
//! Implements exactly what this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], the [`rngs::SmallRng`]
//! and [`rngs::StdRng`] generators (both xoshiro256++ here), and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`]. Deterministic
//! for a given seed, no external dependencies, not cryptographically secure.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256pp};

    /// Small, fast generator (xoshiro256++ in this shim).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256pp);

    /// The "standard" generator (also xoshiro256++ in this shim, seeded
    /// with a different salt so the two families decorrelate).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256pp);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256pp::from_seed_u64(state))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256pp::from_seed_u64(state ^ 0x51D2_DFA0_5D3C_2A7F))
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::sample(rng) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::sample(rng) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferable type (the `Standard` distribution).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn families_decorrelate() {
        let mut s = SmallRng::seed_from_u64(7);
        let mut d = StdRng::seed_from_u64(7);
        let a: u64 = s.gen();
        let b: u64 = d.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle preserves elements");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
