//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! send/recv/try_recv/recv_timeout surface this workspace uses, implemented
//! on top of `std::sync::mpsc`. Error types are re-exported from std so
//! pattern matches against `crossbeam::channel::RecvTimeoutError::*` work
//! unchanged.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    // Manual impl: `derive(Clone)` would require `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Creates an unbounded multi-producer single-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41).unwrap();
            tx.send(42).unwrap();
        });
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.try_recv().unwrap(), 42);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_semantics() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
