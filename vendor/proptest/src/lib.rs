//! Offline shim for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings, [`Strategy`] with [`Strategy::prop_map`],
//! numeric-range and tuple strategies, [`collection::vec`],
//! [`sample::select`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically generated random cases (seeded from the
//! test's name, overridable via `PROPTEST_CASES`), and a failing case
//! panics with the case number so it can be replayed by reading the
//! generation order.

use std::ops::Range;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Deterministic generator state used for case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), typically the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Runs `body` over the configured number of generated cases. Panics from
/// `body` are annotated with the failing case index.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, mut body: F) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CASES)
        .max(1);
    let mut rng = TestRng::from_name(name);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest shim: property `{name}` failed at case {case}/{cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    /// Namespaced strategy modules, as in `prop::collection::vec`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = prop::collection::vec((0u64..100, 0.0f64..1.0), 1..10);
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strat = prop::collection::vec(0u32..5, 2..6);
        let mut rng = crate::TestRng::from_name("len");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn select_picks_from_options() {
        let strat = prop::sample::select(vec![250u64, 500]);
        let mut rng = crate::TestRng::from_name("sel");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2, "both options should appear");
    }

    proptest! {
        /// The macro itself: bindings, map, and assertions all wire up.
        #[test]
        fn macro_smoke(xs in prop::collection::vec(1usize..10, 1..5).prop_map(|v| v.len()), y in 0u8..3) {
            prop_assert!((1..5).contains(&xs), "xs {xs}");
            prop_assert!(y < 3);
            prop_assert_eq!(xs + 1, xs + 1);
            prop_assert_ne!(xs, xs + 1);
        }
    }
}
