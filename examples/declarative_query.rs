//! The declarative query frontend end to end.
//!
//! Queries arrive as text (or through the typed builder), are validated
//! into a [`ValidatedQuery`] — the staged pipeline makes invalid specs
//! unrepresentable past that point — and compile into exactly the graphs
//! the Table-1 presets build. The finale attaches a `GROUP BY` query to
//! the live engine and shows it dispatching the dictionary group-by
//! kernel.
//!
//! Run with: `cargo run --release --example declarative_query`

use themis::operators::kernels::group_kernel_invocations;
use themis::prelude::*;

fn main() {
    // 1. Text and builder are two doors into the same QueryDef.
    let text = "SELECT AVG(value) FROM cpu[10] WHERE value >= 20 WINDOW 1s";
    let parsed = QueryDef::parse(text).expect("parses");
    let built = QueryDef::aggregate(AggFunc::Avg, "value")
        .from_stream(StreamDef::new("cpu", 10))
        .filter("value", CmpOp::Ge, 20.0)
        .window(TimeDelta::from_secs(1));
    assert_eq!(parsed, built);
    println!("parsed + built agree: {}", parsed.text());

    // 2. Validation errors are actionable, not panics.
    println!("\nrejected queries:");
    for bad in [
        "SELECT AVG(temp) FROM cpu[4]",
        "SELECT host, AVG(host) FROM cpu[4] GROUP BY host",
        "SELECT SUM(value) FROM cpu[4] GROUP BY value",
    ] {
        match QueryDef::parse(bad).and_then(|d| d.validate()) {
            Ok(_) => unreachable!("{bad} should be rejected"),
            Err(e) => println!("  {bad}\n    -> {e}"),
        }
    }

    // 3. The Table-1 presets are canned QueryDefs now: their text
    //    round-trips through the parser into the identical graph.
    println!("\nTable-1 presets as query text:");
    for t in [
        Template::Avg,
        Template::Count,
        Template::AvgAll { fragments: 3 },
        Template::Top5 { fragments: 2 },
        Template::Cov { fragments: 2 },
    ] {
        println!("  {:8} = {}", t.name(), t.text());
        let mut parsed_ids = IdGen::new();
        let mut preset_ids = IdGen::new();
        let via_text = QueryDef::parse(&t.text())
            .unwrap()
            .named(t.name())
            .validate()
            .unwrap()
            .compile(QueryId(0), &mut parsed_ids)
            .into_spec();
        assert_eq!(via_text, t.build(QueryId(0), &mut preset_ids));
    }

    // 4. A GROUP BY-on-tag query on the live engine: each of the six
    //    sources is a dictionary-coded "host", and the per-window sums
    //    run through the typed group kernel.
    let query = "SELECT host, SUM(value) FROM racks[6] GROUP BY host";
    let validated = QueryDef::parse(query).unwrap().validate().unwrap();
    let scenario = ScenarioBuilder::new("declarative", 7)
        .nodes(2)
        .capacity_tps(1_000_000)
        .stw_window(TimeDelta::from_secs(1))
        .duration(TimeDelta::from_secs(3))
        .warmup(TimeDelta::from_millis(500))
        .add_query_defs(
            &validated,
            1,
            SourceProfile::steady(200, 5, Dataset::Uniform),
        )
        .build()
        .unwrap();
    println!("\nrunning on the engine (~3 s): {query}");
    let calls_before = group_kernel_invocations();
    let report = run_engine(&scenario, EngineConfig::default());
    let (id, _) = report.per_query_sic[0];
    println!(
        "  group kernel calls: {}, result windows: {}, mean SIC {:.3}",
        group_kernel_invocations() - calls_before,
        report.result_counts.get(&id).copied().unwrap_or(0),
        report.per_query_sic[0].1
    );
}
