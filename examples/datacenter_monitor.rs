//! The complex workload of Table 1 as a standalone application: a
//! data-centre health monitoring service running AVG-all, TOP-5 and COV
//! queries over server CPU/memory telemetry, federated across six nodes.
//!
//! Prints per-template result quality and the degradation profile under
//! increasing overload — the information a THEMIS operator would watch.
//!
//! ```text
//! cargo run --release --example datacenter_monitor
//! ```

use std::collections::BTreeMap;

use themis::prelude::*;

fn build(capacity: u32, seed: u64) -> Scenario {
    let telemetry = SourceProfile::steady(10, 2, Dataset::PlanetLab);
    ScenarioBuilder::new("datacenter", seed)
        .nodes(6)
        .capacity_tps(capacity)
        .duration(TimeDelta::from_secs(30))
        .warmup(TimeDelta::from_secs(12))
        .add_queries(Template::AvgAll { fragments: 2 }, 6, telemetry)
        .add_queries(Template::Top5 { fragments: 2 }, 6, telemetry)
        .add_queries(Template::Cov { fragments: 2 }, 6, telemetry)
        .build()
        .expect("placement")
}

fn main() {
    println!("data-centre monitoring: 18 queries (AVG-all, TOP-5, COV) on 6 nodes\n");
    println!(
        "{:>10} {:>9} {:>11} {:>11} {:>11} {:>7} {:>7}",
        "capacity", "overload", "AVG-all", "TOP-5", "COV", "jain", "shed%"
    );
    for capacity in [2000u32, 600, 300, 150, 75] {
        let scenario = build(capacity, 11);
        let overload = scenario.overload_factor();
        let report = run_scenario(scenario, SimConfig::default());
        // Mean SIC per template.
        let mut by_template: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for q in &report.per_query {
            by_template
                .entry(q.template.as_str())
                .or_default()
                .push(q.mean_sic);
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>10} {:>8.1}x {:>11.3} {:>11.3} {:>11.3} {:>7.3} {:>6.0}%",
            capacity,
            overload,
            mean(&by_template["AVG-all"]),
            mean(&by_template["TOP-5"]),
            mean(&by_template["COV"]),
            report.jain(),
            report.shed_fraction() * 100.0
        );
    }
    println!(
        "\nAs overload grows, every template degrades *together* — the\n\
         BALANCE-SIC shedder keeps Jain's index near 1 regardless of how\n\
         different the queries' operators and source counts are (the SIC\n\
         metric is query-independent, §4)."
    );
}
