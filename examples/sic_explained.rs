//! A guided tour of the SIC metric, reproducing the paper's two worked
//! examples with the library's own machinery:
//!
//! * Figure 2 — SIC propagation through a three-operator query, with and
//!   without shedding;
//! * Figure 3 — one round of `selectTuplesToKeep` on a node with capacity
//!   for 10 tuples and four competing queries.
//!
//! ```text
//! cargo run --release --example sic_explained
//! ```

use themis::prelude::*;

fn figure2() {
    println!("— Figure 2: SIC propagation —\n");
    // Two sources; one emits 4 tuples per STW, the other 2 (|S| = 2).
    let fast = Sic::source_tuple(4, 2);
    let slow = Sic::source_tuple(2, 2);
    println!("source tuple SIC: fast source {fast}, slow source {slow}   (Eq. 1)");

    // Operator b consumes the 4 fast tuples atomically and emits 2.
    let b_out = Sic::derived_tuple(Sic(4.0 * fast.value()), 2);
    // Operator c passes the 2 slow tuples through (2 in, 2 out).
    let c_out = Sic::derived_tuple(Sic(2.0 * slow.value()), 2);
    println!("operator b: 4 x {fast} -> 2 derived @ {b_out}   (Eq. 3)");
    println!("operator c: 2 x {slow} -> 2 derived @ {c_out}");

    // Operator a consumes all 4 derived tuples, emits 2 results.
    let result = Sic::derived_tuple(Sic(2.0 * b_out.value() + 2.0 * c_out.value()), 2);
    let q_sic = 2.0 * result.value();
    println!("operator a: 4 derived -> 2 results @ {result}; qSIC = {q_sic}   (Eq. 4)");
    assert!((q_sic - 1.0).abs() < 1e-12);
    println!("perfect processing carries qSIC = 1\n");

    // With shedding: b loses two inputs, a loses one of c's deriveds.
    let b_out_shed = Sic::derived_tuple(Sic(2.0 * fast.value()), 2);
    let result_shed = Sic::derived_tuple(Sic(2.0 * b_out_shed.value() + c_out.value()), 2);
    let q_shed = 2.0 * result_shed.value();
    println!("with shedding (2 source tuples + 1 derived dropped): qSIC = {q_shed}");
    assert!((q_shed - 0.5).abs() < 1e-12);
    println!("exactly the paper's 0.5 — half the source information reached the result\n");
}

fn figure3() {
    println!("— Figure 3: selectTuplesToKeep, capacity c = 10 —\n");
    // Four queries; per-tuple SIC values 1/20, 1/30, 1/10, and for the
    // two-source q4: 1/20 and 1/40 (normalised by |S| = 2).
    let mut queries = Vec::new();
    let mut idx = 0;
    for (q, (n, sic)) in [(20usize, 1.0 / 20.0), (30, 1.0 / 30.0), (10, 1.0 / 10.0)]
        .into_iter()
        .enumerate()
    {
        queries.push(QueryBufferState {
            query: QueryId(q as u32),
            base_sic: Sic::ZERO,
            batches: (0..n)
                .map(|i| CandidateBatch {
                    buffer_index: idx + i,
                    sic: Sic(sic),
                    tuples: 1,
                    created: Timestamp(i as u64),
                })
                .collect(),
        });
        idx += n;
    }
    let mut q4 = Vec::new();
    for i in 0..10 {
        q4.push(CandidateBatch {
            buffer_index: idx + i,
            sic: Sic(1.0 / 20.0),
            tuples: 1,
            created: Timestamp(i as u64),
        });
    }
    for i in 0..20 {
        q4.push(CandidateBatch {
            buffer_index: idx + 10 + i,
            sic: Sic(1.0 / 40.0),
            tuples: 1,
            created: Timestamp(i as u64),
        });
    }
    queries.push(QueryBufferState {
        query: QueryId(3),
        base_sic: Sic::ZERO,
        batches: q4,
    });

    let mut shedder = BalanceSicShedder::new(2016);
    let decision = shedder.select_to_keep(10, &queries);
    println!(
        "kept {} of {} tuples; shed {} batches",
        decision.kept_tuples,
        decision.kept_tuples + decision.shed_tuples,
        decision.shed_batches
    );
    // Recompute per-query kept SIC.
    let kept: std::collections::HashSet<usize> = decision.keep.iter().copied().collect();
    for q in &queries {
        let sic: f64 = q
            .batches
            .iter()
            .filter(|b| kept.contains(&b.buffer_index))
            .map(|b| b.sic.value())
            .sum();
        println!("  {}: qSIC after shedding = {sic:.4}", q.query);
    }
    println!(
        "\nall queries converge to ~0.1 (the paper's outcome), with the\n\
         leftover capacity spent on one of the minimum queries."
    );
}

fn main() {
    figure2();
    figure3();
}
