//! Quickstart: build an overloaded two-node federation, run the
//! BALANCE-SIC shedder, and inspect per-query fairness.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use themis::prelude::*;

fn main() {
    // Six two-fragment covariance queries over two nodes. Each node gets
    // 240 t/s of demand but can only process 120 t/s: permanent 2x
    // overload, the paper's operating regime (§2.1, C2).
    let scenario = ScenarioBuilder::new("quickstart", 42)
        .nodes(2)
        .capacity_tps(120)
        .duration(TimeDelta::from_secs(30))
        .warmup(TimeDelta::from_secs(12))
        .add_queries(
            Template::Cov { fragments: 2 },
            6,
            SourceProfile::steady(40, 4, Dataset::Gaussian),
        )
        .build()
        .expect("valid scenario");

    println!(
        "demand/node: {:?} t/s, capacity: {:?} t/s, overload: {:.1}x",
        scenario.demand_per_node_tps(),
        scenario.node_capacity_tps,
        scenario.overload_factor()
    );

    let report = run_scenario(scenario, SimConfig::default());

    println!("\nper-query result SIC after BALANCE-SIC shedding:");
    for q in &report.per_query {
        println!(
            "  {} ({}, {} fragments): SIC {:.3}",
            q.query, q.template, q.fragments, q.mean_sic
        );
    }
    println!(
        "\nmean SIC {:.3} | Jain's index {:.3} | shed {:.0}% of tuples | {} coordinator msgs ({} B)",
        report.mean_sic(),
        report.jain(),
        report.shed_fraction() * 100.0,
        report.coordinator_messages,
        report.coordinator_bytes(),
    );
    assert!(report.jain() > 0.9, "BALANCE-SIC should balance SIC values");
}
