//! A shedding policy registered from *outside* `themis-core`.
//!
//! The shedding registry is open: a policy is a name plus a factory, and
//! [`register_shedder`] adds one to the same namespace the six paper
//! policies live in — no enum to extend, no core crate to edit. Once
//! registered, the name is a first-class citizen everywhere: the
//! simulator, the threaded engine, and `experiments --policy=<name>`.
//!
//! The example policy admits buffered batches **round-robin across
//! queries** — one batch per query per pass until the interval's tuple
//! capacity is spent. That is per-query *throughput* fairness, a natural
//! strawman against BALANCE-SIC's *SIC* fairness (Algorithm 1), and the
//! comparison below shows the difference on an overloaded mix.
//!
//! Run with: `cargo run --release --example custom_policy`

use themis::prelude::*;

/// Round-robin admission: cycle over the queries, admitting the next
/// buffered batch of each, until the capacity budget is spent.
struct RoundRobinShedder;

impl Shedder for RoundRobinShedder {
    fn select_to_keep(
        &mut self,
        capacity_tuples: usize,
        queries: &[QueryBufferState],
    ) -> ShedDecision {
        let mut cursors = vec![0usize; queries.len()];
        let mut keep = Vec::new();
        let mut kept_tuples = 0usize;
        loop {
            let mut admitted = false;
            for (qi, q) in queries.iter().enumerate() {
                while cursors[qi] < q.batches.len() {
                    let b = &q.batches[cursors[qi]];
                    cursors[qi] += 1;
                    if kept_tuples + b.tuples <= capacity_tuples {
                        keep.push(b.buffer_index);
                        kept_tuples += b.tuples;
                        admitted = true;
                        break;
                    }
                    // Too big for the remaining budget: shed it and try
                    // this query's next batch on the same pass.
                }
            }
            if !admitted {
                break;
            }
        }
        let total_tuples: usize = queries.iter().map(|q| q.buffered_tuples()).sum();
        let total_batches: usize = queries.iter().map(|q| q.batches.len()).sum();
        ShedDecision {
            shed_tuples: total_tuples - kept_tuples,
            shed_batches: total_batches - keep.len(),
            keep,
            kept_tuples,
        }
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// An overloaded two-node mix: six 2-fragment AVG-all trees against
/// nodes sized for roughly a third of the demand.
fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new("custom-policy", seed)
        .nodes(2)
        .capacity_tps(400)
        .stw_window(TimeDelta::from_secs(3))
        .duration(TimeDelta::from_secs(12))
        .warmup(TimeDelta::from_secs(6))
        .add_queries(
            Template::AvgAll { fragments: 2 },
            6,
            SourceProfile::steady(40, 4, Dataset::Uniform),
        )
        .build()
        .unwrap()
}

fn main() {
    register_shedder("round-robin", |_seed| Box::new(RoundRobinShedder)).unwrap();
    println!(
        "registered policies: {}\n",
        registered_policy_names().join(", ")
    );

    // The handle comes back out of the registry by name, exactly like a
    // builtin — this is the same lookup `experiments --policy=` does.
    let round_robin = lookup_policy("round-robin").unwrap();
    let balance_sic = lookup_policy("balance-sic").unwrap();

    println!("deterministic simulator, overloaded 6-query AVG-all mix:");
    for policy in [balance_sic, round_robin.clone()] {
        let report = run_scenario(scenario(11), SimConfig::with_policy(policy));
        println!(
            "  {:>12}: mean SIC {:.3}, Jain {:.3}, shed {:.0}%",
            report.policy,
            report.mean_sic(),
            report.jain(),
            report.shed_fraction() * 100.0
        );
    }

    // The same handle drives the multi-threaded engine: a synthetic
    // per-tuple cost forces overload so the custom shedder really runs.
    println!("\nthreaded engine (~2 s wall clock):");
    let engine_scn = ScenarioBuilder::new("custom-policy-engine", 13)
        .nodes(2)
        .capacity_tps(1_000_000)
        .stw_window(TimeDelta::from_secs(1))
        .duration(TimeDelta::from_secs(2))
        .warmup(TimeDelta::from_millis(500))
        .add_queries(
            Template::Avg,
            4,
            SourceProfile::steady(400, 5, Dataset::Uniform),
        )
        .build()
        .unwrap();
    let report = run_engine(
        &engine_scn,
        EngineConfig {
            policy: round_robin,
            synthetic_cost: TimeDelta::from_micros(2000),
            ..Default::default()
        },
    );
    println!(
        "  {:>12}: mean SIC {:.3}, Jain {:.3}, shed {:.0}%, {:.1} us/invocation",
        report.policy,
        report.fairness.mean,
        report.fairness.jain,
        report.shed_fraction() * 100.0,
        report.mean_shed_time_us()
    );
}
