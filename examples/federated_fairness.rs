//! Runs the *real* multi-threaded THEMIS engine (crossbeam channels, wall
//! clock ticks, measured cost model) on an overloaded federation and
//! reports fairness plus the shedder's measured execution time — the
//! live-system counterpart of the simulator examples, and the §7.6
//! overhead experiment in miniature.
//!
//! ```text
//! cargo run --release --example federated_fairness
//! ```

use themis::prelude::*;

fn build(seed: u64) -> Scenario {
    let profile = SourceProfile::steady(200, 5, Dataset::Uniform);
    ScenarioBuilder::new("federated-fairness", seed)
        .nodes(2)
        .capacity_tps(1_000_000) // capacity is enforced by synthetic cost
        .duration(TimeDelta::from_secs(6))
        .warmup(TimeDelta::from_secs(3))
        .stw_window(TimeDelta::from_secs(4))
        .add_queries(Template::Cov { fragments: 2 }, 4, profile)
        .add_queries(Template::AvgAll { fragments: 2 }, 2, profile)
        .build()
        .expect("placement")
}

fn main() {
    println!("running the threaded prototype for ~9 s per policy...\n");
    let mut rows = Vec::new();
    for policy in [PolicyKind::BalanceSic, PolicyKind::Random] {
        let cfg = EngineConfig {
            policy: policy.into(),
            // 400 us per tuple: ~625 tuples per 250 ms interval, while
            // sources offer ~ (4*4+2*20) sources * 200 t/s spread over two
            // nodes — heavy overload.
            synthetic_cost: TimeDelta::from_micros(400),
            ..Default::default()
        };
        let report = run_engine(&build(3), cfg);
        println!(
            "{:>12}: mean SIC {:.3}, Jain {:.3}, shed {:.0}%, shedder {:.1} us/invocation",
            report.policy,
            report.fairness.mean,
            report.fairness.jain,
            report.shed_fraction() * 100.0,
            report.mean_shed_time_us()
        );
        for (q, sic) in &report.per_query_sic {
            println!("   {q}: SIC {sic:.3}");
        }
        rows.push(report);
    }
    if rows[1].mean_shed_time_us() > 0.0 {
        println!(
            "\nfair shedder costs {:.2}x the random shedder per invocation \
             (the paper reports 1.11x, §7.6)",
            rows[0].mean_shed_time_us() / rows[1].mean_shed_time_us()
        );
    }
}
