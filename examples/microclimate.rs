//! The paper's motivating deployment (§2.1, Figure 1): a federated
//! urban micro-climate monitoring system spanning three autonomous sites
//! (Rome, Paris, Mexico) with environmental sensors, serving a mixed
//! population of queries — some local and cheap, some spanning sites.
//!
//! The sites are permanently overloaded and Rome is the busiest (skewed
//! load, characteristic C1). The example contrasts BALANCE-SIC with
//! random shedding on exactly this deployment.
//!
//! ```text
//! cargo run --release --example microclimate
//! ```

use themis::prelude::*;

fn build(seed: u64) -> Scenario {
    // Sensors report once per 50 ms; bursty, as weather stations are.
    let sensors = SourceProfile::steady(20, 4, Dataset::PlanetLab) // non-stationary, real-world-like
        .with_pattern(RatePattern::PAPER_BURSTY);
    ScenarioBuilder::new("microclimate", seed)
        .nodes(3) // Rome, Paris, Mexico
        // Rome's data centre is the smallest (heterogeneous capacities).
        .node_capacities(vec![250, 500, 500])
        .link_latency(TimeDelta::from_millis(50)) // intercontinental
        .duration(TimeDelta::from_secs(30))
        .warmup(TimeDelta::from_secs(12))
        // "The 10 highest CO concentrations every minute" — top-k over
        // sensors at two sites.
        .add_queries(Template::Top5 { fragments: 2 }, 3, sensors)
        // "Covariance between temperature and airflow in Paris" — local
        // two-sensor correlation queries, federated over 3 sites.
        .add_queries(Template::Cov { fragments: 3 }, 6, sensors)
        // City-wide average temperature, aggregated from all sites.
        .add_queries(Template::AvgAll { fragments: 3 }, 4, sensors)
        .build()
        .expect("3-site placement")
}

fn main() {
    println!("federated micro-climate monitoring: 3 sites, 13 queries\n");
    let scenario = build(7);
    println!(
        "per-site demand: {:?} t/s, capacities {:?} t/s",
        scenario
            .demand_per_node_tps()
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>(),
        scenario.node_capacity_tps,
    );

    for policy in [PolicyKind::BalanceSic, PolicyKind::Random] {
        let report = run_scenario(build(7), SimConfig::with_policy(policy));
        println!(
            "\n{:>12}: mean SIC {:.3}, Jain {:.3}, std {:.3}, shed {:.0}%",
            report.policy,
            report.mean_sic(),
            report.jain(),
            report.fairness.std,
            report.shed_fraction() * 100.0
        );
        for q in &report.per_query {
            println!(
                "   {} {:<8} {} fragments  SIC {:.3}",
                q.query, q.template, q.fragments, q.mean_sic
            );
        }
    }
    println!(
        "\nBALANCE-SIC equalises processing quality across the federation\n\
         even though Rome is twice as loaded as the other sites."
    );
}
